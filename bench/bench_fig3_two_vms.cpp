/// \file bench_fig3_two_vms.cpp
/// Reproduces Figure 3: resource utilizations for two VMs co-located in
/// a PM, each running the same Table II workload simultaneously
/// (Sec. IV-B). The reported VM column is one VM (the paper: "the
/// measurements of all VMs are exactly the same").
///
/// Cells fan across workers (`--jobs N`); historical per-cell seeds
/// keep the output byte-identical to the serial run.

#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using bench::measure_sweep;
using bench::only;
using bench::vs;
using wl::WorkloadKind;

void fig3a(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 3(a): CPU utilizations for CPU-intensive workload (2 VMs)");
  t.set_header({"input(%)", "VM", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {1, 30, 60, 90, 100};
  const auto cells = measure_sweep(WorkloadKind::kCpu, inputs, 1100, 2, false,
                                   opts);
  double vm_at_100 = 0, dom0_hi = 0, hyp_hi = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    std::vector<std::string> row = {only(in, 0)};
    if (in == 100.0) {
      row.push_back(vs(r.vm.cpu_pct, 95.0));
      vm_at_100 = r.vm.cpu_pct;
      dom0_hi = r.dom0.cpu_pct;
      hyp_hi = r.hyp.cpu_pct;
    } else {
      row.push_back(only(r.vm.cpu_pct));
    }
    row.push_back(only(r.dom0.cpu_pct));
    row.push_back(only(r.hyp.cpu_pct));
    t.add_row(row);
  }
  std::cout << t.str();
  bench::verdict("VM CPU at 100% input (paper: 95%, co-location loss)",
                 vm_at_100, 95.0, 1.5);
  bench::verdict("Dom0 CPU plateau (paper: stable ~23.4%)", dom0_hi, 23.4,
                 1.0);
  bench::verdict("Hypervisor CPU plateau (paper: ~12.0%)", hyp_hi, 12.0,
                 0.8);
  std::cout << '\n';
}

void fig3b(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 3(b): I/O utilizations for I/O-intensive workload (2 VMs)");
  t.set_header({"input(blk/s)", "VM", "sum(VMs)", "Dom0", "PM"});
  const std::vector<double> inputs = {15, 30, 45, 60, 75};
  const auto cells = measure_sweep(WorkloadKind::kIo, inputs, 1200, 2, false,
                                   opts);
  double ratio = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    t.add_row({only(in, 0), only(r.vm.io_blocks_per_s),
               only(r.vm_sum.io_blocks_per_s),
               vs(r.dom0.io_blocks_per_s, 0.0), only(r.pm.io_blocks_per_s)});
    if (in == 75.0) ratio = r.pm.io_blocks_per_s / r.vm_sum.io_blocks_per_s;
  }
  std::cout << t.str();
  bench::verdict("PM / sum(VM) I/O ratio (paper: 'more than twice')", ratio,
                 2.2, 0.25);
  std::cout << '\n';
}

void fig3c(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 3(c): CPU utilizations for I/O-intensive workload (2 VMs)");
  t.set_header({"input(blk/s)", "VM", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {15, 30, 45, 60, 75};
  const auto cells = measure_sweep(WorkloadKind::kIo, inputs, 1300, 2, false,
                                   opts);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& r = cells[i];
    t.add_row({only(inputs[i], 0), vs(r.vm.cpu_pct, 0.84, 2),
               vs(r.dom0.cpu_pct, 17.4), vs(r.hyp.cpu_pct, 2.7)});
  }
  std::cout << t.str();
  std::cout << "  paper: Dom0 17.4%, VM 0.84%, hypervisor 2.7% - all flat; "
               "co-location adds ~2% Dom0 CPU vs Fig. 2(c)\n\n";
}

void fig3d(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 3(d): BW utilizations for BW-intensive workload (2 VMs)");
  t.set_header({"input(Kb/s)", "VM", "sum(VMs)", "Dom0", "PM"});
  const std::vector<double> inputs = {1, 320, 640, 960, 1280};
  const auto cells = measure_sweep(WorkloadKind::kBw, inputs, 1400, 2, false,
                                   opts);
  double frac = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    t.add_row({only(in, 0), only(r.vm.bw_kbps, 0), only(r.vm_sum.bw_kbps, 0),
               vs(r.dom0.bw_kbps, 0.0, 0), only(r.pm.bw_kbps, 0)});
    if (in == 1280.0) {
      frac = (r.pm.bw_kbps - r.vm_sum.bw_kbps) / r.pm.bw_kbps;
    }
  }
  std::cout << t.str();
  bench::verdict("|PMbw - sum VMbw| / PMbw (paper: 3%)", frac, 0.03, 0.01);
  std::cout << '\n';
}

void fig3e(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 3(e): CPU utilizations for BW-intensive workload (2 VMs)");
  t.set_header({"input(Kb/s)", "VM", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {1, 320, 640, 960, 1280};
  const auto cells = measure_sweep(WorkloadKind::kBw, inputs, 1500, 2, false,
                                   opts);
  double dom0_lo = 0, dom0_hi = 0, hyp_lo = 0, hyp_hi = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    std::vector<std::string> row = {only(in, 0), only(r.vm.cpu_pct, 2)};
    if (in == 1.0) {
      row.push_back(vs(r.dom0.cpu_pct, 17.1));
      row.push_back(vs(r.hyp.cpu_pct, 2.6));
      dom0_lo = r.dom0.cpu_pct;
      hyp_lo = r.hyp.cpu_pct;
    } else if (in == 1280.0) {
      row.push_back(vs(r.dom0.cpu_pct, 41.8));
      row.push_back(vs(r.hyp.cpu_pct, 4.0));
      dom0_hi = r.dom0.cpu_pct;
      hyp_hi = r.hyp.cpu_pct;
    } else {
      row.push_back(only(r.dom0.cpu_pct));
      row.push_back(only(r.hyp.cpu_pct));
    }
    t.add_row(row);
  }
  std::cout << t.str();
  // Input axis is per-VM; 2 VMs double the aggregate: slope vs input
  // is 2 x 0.0105.
  bench::verdict("Dom0 CPU slope per input Kb/s (paper: rate 0.01 x 2 VMs)",
                 (dom0_hi - dom0_lo) / 1279.0, 0.021, 0.004);
  bench::verdict("Hyp CPU slope per input Kb/s (paper: 0.0005 x 2 VMs)",
                 (hyp_hi - hyp_lo) / 1279.0, 0.0011, 0.0005);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 3: resource utilizations for "
               "two co-located VMs ===\n\n";
  fig3a(opts);
  fig3b(opts);
  fig3c(opts);
  fig3d(opts);
  fig3e(opts);
  return 0;
}
