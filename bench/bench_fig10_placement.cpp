/// \file bench_fig10_placement.cpp
/// Reproduces Figure 10: virtualization-overhead-aware (VOA) vs
/// -unaware (VOU) VM placement (Sec. VI-B). Five identical VMs (RUBiS
/// web + DB + three fillers) are placed onto two host PMs by a
/// CloudScale-style pipeline, in random order, 10 times per scenario.
/// Scenario k runs lookbusy at 50 % CPU in k of the three fillers.
///
/// Fig. 10(a): mean RUBiS throughput (req/s) with p10/p90 error bars —
/// VOA stays stable; VOU degrades as the filler load grows because it
/// ignores the Dom0/hypervisor CPU the model accounts for.
/// Fig. 10(b): total time to process the request volume — higher for
/// VOU.

#include <iostream>

#include "model_common.hpp"
#include "voprof/placement/evaluation.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 10: virtualization-overhead "
               "aware resource provisioning ===\n"
               "Training the overhead model, profiling VM roles with the "
               "CloudScale demand predictor...\n\n";
  const model::TrainedModels& models =
      bench::train_paper_models(model::RegressionMethod::kLms,
                                util::seconds(120.0), opts.jobs);

  place::EvalConfig cfg;
  cfg.repetitions = 10;  // paper: "repeated this VM placement ... 10 times"
  cfg.clients = 500;     // paper: 500 simultaneous clients
  const place::PlacementEvaluation eval(cfg, &models.multi);

  const auto& demands = eval.role_demands();
  std::cout << "CloudScale-predicted per-role demands:\n";
  for (const auto& [role, d] : demands) {
    std::printf("  %-10s cpu=%6.2f%%  mem=%6.1fMiB  io=%5.2fblk/s  "
                "bw=%7.1fKb/s\n",
                place::role_name(role).c_str(), d.cpu, d.mem, d.io, d.bw);
  }
  std::cout << '\n';

  util::AsciiTable ta(
      "Figure 10(a): average RUBiS throughput (req/s), error bars = "
      "p10/p90 over 10 placements");
  ta.set_header({"scenario", "VOA mean", "VOA p10", "VOA p90", "VOU mean",
                 "VOU p10", "VOU p90"});
  util::AsciiTable tb(
      "Figure 10(b): total time to process the request volume (s); "
      "latency = Little's-law mean response time (s)");
  tb.set_header({"scenario", "VOA", "VOU", "VOA latency", "VOU latency"});

  // The 4 scenarios x {VOA, VOU} cells are independent once the role
  // demands above are materialized; fan them over the workers and
  // print in scenario order.
  runner::SweepRunner sweep(opts);
  const std::vector<place::CellStats> cells =
      sweep.map(8, [&eval](std::size_t i) {
        return eval.run_cell(static_cast<int>(i / 2), i % 2 == 0);
      });

  double prev_vou = 1e9;
  bool vou_monotone = true, voa_wins = true;
  for (int scenario = 0; scenario <= 3; ++scenario) {
    const place::CellStats& voa =
        cells[static_cast<std::size_t>(scenario) * 2];
    const place::CellStats& vou =
        cells[static_cast<std::size_t>(scenario) * 2 + 1];
    ta.add_row({std::to_string(scenario), util::fmt(voa.mean_throughput, 1),
                util::fmt(voa.p10_throughput, 1),
                util::fmt(voa.p90_throughput, 1),
                util::fmt(vou.mean_throughput, 1),
                util::fmt(vou.p10_throughput, 1),
                util::fmt(vou.p90_throughput, 1)});
    tb.add_row({std::to_string(scenario), util::fmt(voa.mean_total_time, 0),
                util::fmt(vou.mean_total_time, 0),
                util::fmt(voa.mean_latency_s, 2),
                util::fmt(vou.mean_latency_s, 2)});
    if (vou.mean_throughput > prev_vou + 2.0) vou_monotone = false;
    prev_vou = vou.mean_throughput;
    if (voa.mean_throughput + 2.0 < vou.mean_throughput) voa_wins = false;
  }
  std::cout << ta.str() << '\n' << tb.str() << '\n';

  std::cout << "Shape checks (paper's claims):\n"
            << "  VOA throughput >= VOU in every scenario: "
            << (voa_wins ? "OK" : "DIVERGES") << '\n'
            << "  VOU throughput non-increasing with scenario load: "
            << (vou_monotone ? "OK" : "DIVERGES") << '\n'
            << "  (VOU packs 4 VMs on one PM until the memory check "
               "trips; with loaded fillers the RUBiS VMs starve for "
               "CPU it did not account for.)\n";
  return 0;
}
