#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>
#include <utility>

#include "voprof/obs/trace.hpp"
#include "voprof/util/assert.hpp"

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

namespace voprof::bench::harness {

namespace {

/// Integer environment override; returns fallback when unset/malformed.
int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(v);
}

bool json_disabled() {
  const char* raw = std::getenv("VOPROF_BENCH_JSON");
  return raw != nullptr && std::string(raw) == "0";
}

double now_wall_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

util::Json stats_json(const Stats& s) {
  util::Json o = util::Json::object();
  o.set("min", s.min);
  o.set("p10", s.p10);
  o.set("median", s.median);
  o.set("p90", s.p90);
  o.set("max", s.max);
  o.set("mean", s.mean);
  return o;
}

}  // namespace

Stats Stats::of(std::vector<double> xs) {
  VOPROF_REQUIRE_MSG(!xs.empty(), "Stats::of needs at least one sample");
  std::sort(xs.begin(), xs.end());
  const auto quantile = [&xs](double q) {
    // Nearest-rank with linear interpolation between adjacent samples.
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  Stats s;
  s.min = xs.front();
  s.p10 = quantile(0.10);
  s.median = quantile(0.50);
  s.p90 = quantile(0.90);
  s.max = xs.back();
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

EnvInfo capture_env() {
  EnvInfo env;
#if defined(__clang__)
  env.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + std::to_string(__GNUC__) + "." +
                 std::to_string(__GNUC_MINOR__) + "." +
                 std::to_string(__GNUC_PATCHLEVEL__);
#else
  env.compiler = "unknown";
#endif
#ifdef VOPROF_BUILD_TYPE
  env.build_type = VOPROF_BUILD_TYPE;
#else
  env.build_type = "unknown";
#endif
#ifdef VOPROF_SANITIZE_STR
  env.sanitizers = VOPROF_SANITIZE_STR;
#endif
#ifdef VOPROF_GIT_DESCRIBE
  env.git_describe = VOPROF_GIT_DESCRIBE;
#else
  env.git_describe = "unknown";
#endif
#ifdef VOPROF_CXX_FLAGS
  env.cxx_flags = VOPROF_CXX_FLAGS;
#endif
#if defined(__linux__)
  env.os = "linux";
#elif defined(__APPLE__)
  env.os = "darwin";
#else
  env.os = "unknown";
#endif
  env.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&t, &tm) != nullptr) {
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    env.timestamp_utc = buf;
  }
  return env;
}

Session::Session(std::string binary_name)
    : binary_name_(std::move(binary_name)), env_(capture_env()) {
  // Honour VOPROF_TRACE so any bench binary can emit a Chrome trace of
  // its reps without per-binary wiring.
  obs::TraceCollector::global().init_from_env();
}

Session::~Session() {
  if (auto_write_ && dirty_) write_file();
}

void Session::bench(const std::string& name, BenchOptions opt,
                    const std::function<RepResult()>& body) {
  opt.reps = std::max(1, env_int("VOPROF_BENCH_REPS", opt.reps));
  opt.warmup = std::max(0, env_int("VOPROF_BENCH_WARMUP", opt.warmup));

  for (int i = 0; i < opt.warmup; ++i) (void)body();

  Measurement m;
  m.name = name;
  m.warmup = opt.warmup;
  m.reps = opt.reps;
  m.wall_s.reserve(static_cast<std::size_t>(opt.reps));
  for (int i = 0; i < opt.reps; ++i) {
    const obs::WallSpan span("bench", name.c_str());
    const double t0 = now_wall_s();
    const RepResult rep = body();
    const double wall = std::max(1e-12, now_wall_s() - t0);
    m.wall_s.push_back(wall);
    m.sim_s = rep.sim_s;
    m.checksum = rep.checksum;
    if (rep.sim_s > 0.0) m.throughput.push_back(rep.sim_s / wall);
  }
  measurements_.push_back(std::move(m));
  dirty_ = true;
}

void Session::record_section(const std::string& name, double wall_s,
                             double sim_s, double checksum) {
  Measurement m;
  m.name = name;
  m.warmup = 0;
  m.reps = 1;
  m.sim_s = sim_s;
  m.checksum = checksum;
  m.wall_s.push_back(std::max(1e-12, wall_s));
  if (sim_s > 0.0) m.throughput.push_back(sim_s / m.wall_s.back());
  measurements_.push_back(std::move(m));
  dirty_ = true;
}

std::string Session::next_section_name(const std::string& hint) {
  return hint + "#" + std::to_string(section_counter_++);
}

util::Json Session::to_json() const {
  util::Json root = util::Json::object();
  root.set("schema", "voprof-bench-1");
  root.set("binary", binary_name_);

  util::Json env = util::Json::object();
  env.set("compiler", env_.compiler);
  env.set("build_type", env_.build_type);
  env.set("sanitizers", env_.sanitizers);
  env.set("git_describe", env_.git_describe);
  env.set("cxx_flags", env_.cxx_flags);
  env.set("os", env_.os);
  env.set("hardware_threads", env_.hardware_threads);
  env.set("timestamp_utc", env_.timestamp_utc);
  root.set("env", std::move(env));

  util::Json benches = util::Json::array();
  for (const Measurement& m : measurements_) {
    util::Json b = util::Json::object();
    b.set("name", m.name);
    b.set("warmup", m.warmup);
    b.set("reps", m.reps);
    b.set("sim_s", m.sim_s);
    b.set("checksum", m.checksum);
    b.set("wall_s", stats_json(Stats::of(m.wall_s)));
    util::Json raw = util::Json::array();
    for (const double w : m.wall_s) raw.push_back(w);
    b.set("raw_wall_s", std::move(raw));
    if (!m.throughput.empty()) {
      b.set("throughput_sim_s_per_wall_s", stats_json(Stats::of(m.throughput)));
    }
    benches.push_back(std::move(b));
  }
  root.set("benchmarks", std::move(benches));
  return root;
}

std::string Session::output_path() const {
  std::string stem = binary_name_;
  if (stem.rfind("bench_", 0) == 0) stem = stem.substr(6);
  if (stem.empty()) stem = "unnamed";
  const char* dir = std::getenv("VOPROF_BENCH_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';
  return path + "BENCH_" + stem + ".json";
}

void Session::write_file() {
  if (json_disabled()) return;
  const std::string path = output_path();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "harness: cannot write %s\n", path.c_str());
    return;
  }
  out << to_json().dump(2) << '\n';
  dirty_ = false;
}

Session& Session::global() {
  static Session session([] {
#if defined(__GLIBC__)
    if (program_invocation_short_name != nullptr &&
        *program_invocation_short_name != '\0') {
      return std::string(program_invocation_short_name);
    }
#endif
    return std::string("bench");
  }());
  return session;
}

}  // namespace voprof::bench::harness
