/// \file bench_ablation_scheduler.cpp
/// Scheduler-fidelity ablation: the reproduction's figures are
/// generated with a closed-form credit-scheduler average (macro).
/// This bench re-runs the headline CPU results with the discrete Xen
/// credit algorithm (credits, UNDER/OVER, 30 ms accounting) and shows
/// the 1-second averages — and therefore the paper's figures — do not
/// depend on that modeling choice, while the tick-level behaviour
/// differs exactly as expected (whole-core slices, credit rotation).

#include <cstdio>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "voprof/xensim/credit_micro.hpp"

namespace {

using namespace voprof;

struct CpuPoint {
  double vm = 0.0;
  double dom0 = 0.0;
  double hyp = 0.0;
};

CpuPoint measure(sim::SchedulerMode mode, int n_vms, double load,
                 std::uint64_t seed) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, seed);
  sim::MachineSpec spec;
  spec.scheduler = mode;
  sim::PhysicalMachine& pm = cluster.add_machine(spec);
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec vm;
    vm.name = "vm" + std::to_string(i + 1);
    pm.add_vm(vm).attach(
        std::make_unique<wl::CpuHog>(load, seed + static_cast<std::uint64_t>(i)));
  }
  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report =
      monitor.measure(util::seconds(60.0));
  return CpuPoint{report.mean("vm1").cpu_pct,
                  report.mean(mon::MeasurementReport::kDom0Key).cpu_pct,
                  report.mean(mon::MeasurementReport::kHypKey).cpu_pct};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: macro (closed-form) vs micro (discrete Xen "
               "credit) scheduler ===\n\n";

  util::AsciiTable t(
      "1 s averages under both schedulers (60 s runs, CPU workloads)");
  t.set_header({"scenario", "VM macro", "VM micro", "Dom0 macro",
                "Dom0 micro", "hyp macro", "hyp micro"});
  const struct {
    int n;
    double load;
    const char* label;
  } rows[] = {
      {1, 60.0, "1 VM @ 60%"},
      {1, 99.0, "1 VM @ 99% (Fig 2a)"},
      {2, 100.0, "2 VMs @ 100% (Fig 3a)"},
      {4, 100.0, "4 VMs @ 100% (Fig 4a)"},
      {4, 30.0, "4 VMs @ 30%"},
  };
  double worst_vm_delta = 0.0;
  for (const auto& row : rows) {
    const CpuPoint macro = measure(sim::SchedulerMode::kMacro, row.n,
                                   row.load, 100);
    const CpuPoint micro = measure(sim::SchedulerMode::kMicro, row.n,
                                   row.load, 100);
    t.add_row({row.label, util::fmt(macro.vm, 2), util::fmt(micro.vm, 2),
               util::fmt(macro.dom0, 2), util::fmt(micro.dom0, 2),
               util::fmt(macro.hyp, 2), util::fmt(micro.hyp, 2)});
    worst_vm_delta =
        std::max(worst_vm_delta, std::abs(macro.vm - micro.vm));
  }
  std::cout << t.str() << '\n';
  bench::verdict("worst |VM CPU| delta between schedulers (%)",
                 worst_vm_delta, 0.0, 2.0);

  // Show the tick-level difference the averages hide.
  std::cout << "\nTick-level contrast (4 saturated VCPUs on the 2-core "
               "pool):\n";
  sim::MicroCreditScheduler micro(2, 0.95);
  std::vector<sim::SchedRequest> reqs(
      4, sim::SchedRequest{100.0, 100.0, 1.0});
  std::printf("  micro, per 10 ms tick: ");
  for (int tick = 0; tick < 8; ++tick) {
    const sim::SchedResult r = micro.tick(reqs, 0.01);
    std::printf("[");
    for (std::size_t i = 0; i < 4; ++i) {
      std::printf("%s%.0f", i ? " " : "", r.granted_pct[i]);
    }
    std::printf("] ");
  }
  const sim::CreditScheduler macro_sched(200.0, 0.95);
  const sim::SchedResult m = macro_sched.allocate(reqs);
  std::printf("\n  macro, every tick:     [%.1f %.1f %.1f %.1f]\n",
              m.granted_pct[0], m.granted_pct[1], m.granted_pct[2],
              m.granted_pct[3]);
  std::cout << "\nThe discrete algorithm runs two whole VCPUs per tick "
               "and rotates the pair via credits; the closed form hands "
               "everyone the fair share each tick. At the paper's 1 s "
               "sampling the two are indistinguishable - which is why "
               "the macro model is a sound substitution.\n";
  return 0;
}
