/// \file bench_table3_overhead.cpp
/// Reproduces Table III: which resource-utilization overhead metric is
/// visible under each intensity workload. For every (overhead metric,
/// workload) pair the paper marks, the bench measures the overhead at
/// a low and a high intensity and reports whether it responds — and
/// that the unmarked cells stay flat.
///
/// Cells fan across workers (`--jobs N`); historical per-cell seeds
/// keep the output byte-identical to the serial run.

#include <cmath>
#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using wl::WorkloadKind;

struct OverheadReading {
  double cpu_overhead;  ///< |Dom0| + |hypervisor| CPU
  double io_overhead;   ///< |sum VM_io - PM_io|
  double bw_overhead;   ///< |sum VM_bw - PM_bw|
  double mem_overhead;  ///< |sum VM_mem - PM_mem| (= Dom0 memory)
};

OverheadReading overheads(const bench::CellResult& r) {
  return OverheadReading{
      r.dom0.cpu_pct + r.hyp.cpu_pct,
      std::abs(r.vm_sum.io_blocks_per_s - r.pm.io_blocks_per_s),
      std::abs(r.vm_sum.bw_kbps - r.pm.bw_kbps),
      std::abs(r.vm_sum.mem_mib - r.pm.mem_mib),
  };
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Table III: definition of utilization "
               "overhead ===\n\n"
            << "Overhead metrics: CPU = |Dom0|+|hypervisor|; "
               "I/O = |sum VMio - PMio|; BW = |sum VMbw - PMbw|; "
               "MEM = |sum VMmem - PMmem|.\n\n";

  const struct {
    WorkloadKind kind;
    double lo, hi;
  } sweeps[] = {
      {WorkloadKind::kCpu, 1.0, 99.0},
      {WorkloadKind::kMem, 0.03, 50.0},
      {WorkloadKind::kIo, 15.0, 72.0},
      {WorkloadKind::kBw, 1.0, 1280.0},
  };

  util::AsciiTable t(
      "Overhead response: 'lo -> hi' values per workload sweep (1 VM); "
      "paper's check marks = cells that respond");
  t.set_header({"overhead \\ workload", "CPU-int.", "MEM-int.", "I/O-int.",
                "BW-int.", "paper marks"});

  // One batch of all lo/hi endpoint cells plus the Sec. III-C memory
  // cell printed at the end (historical seeds preserved).
  std::vector<bench::CellSpec> specs;
  for (std::size_t i = 0; i < 4; ++i) {
    bench::CellSpec c;
    c.kind = sweeps[i].kind;
    c.value = sweeps[i].lo;
    c.seed = 5000 + i;
    c.duration = util::seconds(60.0);
    specs.push_back(c);
    c.value = sweeps[i].hi;
    c.seed = 5100 + i;
    specs.push_back(c);
  }
  {
    bench::CellSpec c;
    c.kind = WorkloadKind::kMem;
    c.value = 50.0;
    c.seed = 5200;
    c.duration = util::seconds(60.0);
    specs.push_back(c);
  }
  const auto cells = bench::measure_cells(specs, opts);

  std::array<OverheadReading, 4> lo{}, hi{};
  for (std::size_t i = 0; i < 4; ++i) {
    lo[i] = overheads(cells[2 * i]);
    hi[i] = overheads(cells[2 * i + 1]);
  }

  auto sweep_cell = [&](double a, double b, int dec = 1) {
    return util::fmt(a, dec) + " -> " + util::fmt(b, dec);
  };
  t.add_row({"CPU (|Dom0|+|hyp|) %",
             sweep_cell(lo[0].cpu_overhead, hi[0].cpu_overhead),
             sweep_cell(lo[1].cpu_overhead, hi[1].cpu_overhead),
             sweep_cell(lo[2].cpu_overhead, hi[2].cpu_overhead),
             sweep_cell(lo[3].cpu_overhead, hi[3].cpu_overhead),
             "CPU, BW"});
  t.add_row({"I/O (blocks/s)",
             sweep_cell(lo[0].io_overhead, hi[0].io_overhead),
             sweep_cell(lo[1].io_overhead, hi[1].io_overhead),
             sweep_cell(lo[2].io_overhead, hi[2].io_overhead),
             sweep_cell(lo[3].io_overhead, hi[3].io_overhead), "I/O"});
  t.add_row({"BW (Kb/s)", sweep_cell(lo[0].bw_overhead, hi[0].bw_overhead),
             sweep_cell(lo[1].bw_overhead, hi[1].bw_overhead),
             sweep_cell(lo[2].bw_overhead, hi[2].bw_overhead),
             sweep_cell(lo[3].bw_overhead, hi[3].bw_overhead), "BW"});
  t.add_row({"MEM (MiB)", sweep_cell(lo[0].mem_overhead, hi[0].mem_overhead),
             sweep_cell(lo[1].mem_overhead, hi[1].mem_overhead),
             sweep_cell(lo[2].mem_overhead, hi[2].mem_overhead),
             sweep_cell(lo[3].mem_overhead, hi[3].mem_overhead), "MEM"});
  std::cout << t.str() << '\n';

  // The three checks the paper's Table III encodes.
  bench::verdict("CPU overhead responds to the CPU sweep (delta, %)",
                 hi[0].cpu_overhead - lo[0].cpu_overhead, 23.7, 4.0);
  bench::verdict("CPU overhead responds to the BW sweep (delta, %)",
                 hi[3].cpu_overhead - lo[3].cpu_overhead, 14.2, 3.0);
  bench::verdict("I/O overhead responds to the I/O sweep (delta, blk/s)",
                 hi[2].io_overhead - lo[2].io_overhead, 60.0, 12.0);
  bench::verdict("MEM overhead stays Dom0-constant under MEM sweep (MiB)",
                 hi[1].mem_overhead - lo[1].mem_overhead, 0.0, 2.0);
  std::cout << "\nSec. III-C constants under the MEM-intensive workload "
               "(why the paper omits the memory plots):\n";
  const auto& mem_cell = cells.back();
  std::printf(
      "  Dom0 CPU = %.1f%% (paper 16.8), hyp = %.1f%% (paper 3.0), PM io = "
      "%.1f blk/s (paper 18.8), PM bw = %.0f B/s (paper 254)\n",
      mem_cell.dom0.cpu_pct, mem_cell.hyp.cpu_pct,
      mem_cell.pm.io_blocks_per_s,
      util::kbps_to_bytes_per_s(mem_cell.pm.bw_kbps));
  return 0;
}
