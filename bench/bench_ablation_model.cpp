/// \file bench_ablation_model.cpp
/// Ablation study of the Sec. V modeling choices (the design decisions
/// DESIGN.md calls out). Each variant is trained on the same Table II
/// sweep and evaluated on the same single-instance RUBiS runs
/// (Fig. 7's setup at 300/500/700 clients); the metric is the
/// 90th-percentile PM-CPU prediction error on PM1 and PM2.
///
/// Variants:
///   1. estimator: OLS vs LMS (the paper cites Rousseeuw's LMS [24] —
///      Dom0's convex control-plane response makes the difference)
///   2. PM-CPU method: indirect (measured sum-VM CPU + predicted
///      Dom0/hyp, Sec. VI-A) vs direct Eq. (3) output
///   3. co-location term: full alpha(N) model vs dropping the o(.)
///      overhead term (evaluated on the 2-instance setup of Fig. 8)

#include <cstdio>
#include <iostream>

#include "model_common.hpp"

namespace {

using namespace voprof;

double worst_p90_cpu(const model::MultiVmModel& m, bool indirect,
                     int instances) {
  double worst = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const int clients[] = {300, 500, 700};
    // Re-evaluate with a Predictor configured for the variant.
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 7000 + i);
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    std::vector<std::string> web_vms, db_vms;
    for (int k = 0; k < instances; ++k) {
      rubis::DeployOptions opt;
      opt.clients = clients[i];
      opt.suffix = instances > 1 ? std::to_string(k + 1) : std::string{};
      opt.seed = 7100 + i * 17 + static_cast<std::uint64_t>(k);
      const rubis::RubisInstance inst =
          rubis::deploy_rubis(cluster, 0, 1, 2, opt);
      web_vms.push_back(inst.web_vm);
      db_vms.push_back(inst.db_vm);
    }
    engine.run_for(util::seconds(10.0));
    mon::MonitorScript mon1(engine, cluster.machine(0));
    mon::MonitorScript mon2(engine, cluster.machine(1));
    mon1.start();
    mon2.start();
    engine.run_for(util::seconds(60.0));
    mon1.stop();
    mon2.stop();
    const model::Predictor pred(m, indirect);
    const auto e1 = pred.evaluate(mon1.report(), web_vms);
    const auto e2 = pred.evaluate(mon2.report(), db_vms);
    worst = std::max(
        worst, e1.of(model::MetricIndex::kCpu).error_at_fraction(0.9));
    worst = std::max(
        worst, e2.of(model::MetricIndex::kCpu).error_at_fraction(0.9));
  }
  return worst;
}

/// Beyond-the-paper variant: augment the Dom0/hypervisor *component*
/// fits with a quadratic guest-CPU feature (Mc^2). The paper's Eq. (1)
/// is strictly linear, and the Sec. IV data shows the Dom0 response is
/// convex — this measures how much of the residual error that single
/// missing feature explains. Fitted and evaluated inline (indirect PM
/// CPU = measured guest CPU + dom0_hat + hyp_hat).
struct QuadraticComponents {
  model::LinearFit dom0;
  model::LinearFit hyp;

  static util::Matrix design(const model::TrainingSet& data) {
    util::Matrix x(data.size(), 5);
    for (std::size_t r = 0; r < data.size(); ++r) {
      const auto a = data.rows()[r].vm_sum.to_array();
      for (std::size_t c = 0; c < 4; ++c) x(r, c) = a[c];
      x(r, 4) = a[0] * a[0];  // Mc^2
    }
    return x;
  }

  static QuadraticComponents fit(const model::TrainingSet& data) {
    const model::TrainingSet single = data.with_vm_count(1);
    const util::Matrix x = design(single);
    QuadraticComponents out;
    out.dom0 = model::fit_ols(x, single.response_dom0_cpu());
    out.hyp = model::fit_ols(x, single.response_hyp_cpu());
    return out;
  }

  [[nodiscard]] double predict_pm_cpu(const model::UtilVec& vm_sum) const {
    const std::array<double, 5> x = {vm_sum.cpu, vm_sum.mem, vm_sum.io,
                                     vm_sum.bw, vm_sum.cpu * vm_sum.cpu};
    return vm_sum.cpu + dom0.predict(x) + hyp.predict(x);
  }
};

double worst_p90_cpu_quadratic(const QuadraticComponents& q) {
  double worst = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const int clients[] = {300, 500, 700};
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 8000 + i);
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    rubis::DeployOptions opt;
    opt.clients = clients[i];
    opt.seed = 8100 + i * 17;
    const rubis::RubisInstance inst =
        rubis::deploy_rubis(cluster, 0, 1, 2, opt);
    engine.run_for(util::seconds(10.0));
    mon::MonitorScript mon1(engine, cluster.machine(0));
    mon::MonitorScript mon2(engine, cluster.machine(1));
    mon1.start();
    mon2.start();
    engine.run_for(util::seconds(60.0));
    mon1.stop();
    mon2.stop();
    for (int p = 0; p < 2; ++p) {
      const auto& rep = p == 0 ? mon1.report() : mon2.report();
      const std::string vm = p == 0 ? inst.web_vm : inst.db_vm;
      const auto& s = rep.series(vm);
      const auto& pm = rep.series(mon::MeasurementReport::kPmKey);
      std::vector<double> errs;
      for (std::size_t k = 0; k < rep.sample_count(); ++k) {
        const model::UtilVec v{s.cpu[k].value, s.mem[k].value,
                               s.io[k].value, s.bw[k].value};
        errs.push_back(std::abs(q.predict_pm_cpu(v) - pm.cpu[k].value) /
                       pm.cpu[k].value * 100.0);
      }
      worst = std::max(worst, util::percentile(errs, 90.0));
    }
  }
  return worst;
}

/// A MultiVmModel whose co-location overhead is zeroed: predictions
/// fall back to a(sum M) only, emulating "ignore the alpha(N) term".
model::MultiVmModel without_alpha_term(const model::TrainedModels& full) {
  // Refit with only single-VM rows duplicated as fake multi rows whose
  // residual is zero: simplest is to fit on data where every multi row
  // has its PM values replaced by the base-model prediction, making
  // o ~= 0.
  model::TrainingSet neutered;
  for (model::TrainingRow row : full.data.rows()) {
    if (row.n_vms >= 2) {
      const model::UtilVec base = full.single.predict(row.vm_sum);
      row.pm = base;
      row.dom0_cpu = full.single.predict_dom0_cpu(row.vm_sum);
      row.hyp_cpu = full.single.predict_hyp_cpu(row.vm_sum);
    }
    neutered.add(row);
  }
  // Seed 42 matches the Trainer's, so the base (single-VM) fit is
  // bit-identical to the full model's and only the alpha term differs.
  return model::MultiVmModel::fit(neutered, model::RegressionMethod::kLms,
                                  42);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: Sec. V modeling choices ===\n\n";

  std::cout << "Training both estimators on the identical Table II sweep "
               "(2 min/cell)...\n\n";
  const model::TrainedModels& lms =
      bench::train_paper_models(model::RegressionMethod::kLms);
  const model::TrainedModels& ols =
      bench::train_paper_models(model::RegressionMethod::kOls);

  util::AsciiTable t(
      "Worst 90th-percentile PM-CPU prediction error (%), Fig. 7 setup");
  t.set_header({"variant", "1 RUBiS instance", "2 instances"});
  t.add_row({"LMS + indirect CPU (paper method)",
             util::fmt(worst_p90_cpu(lms.multi, true, 1), 2),
             util::fmt(worst_p90_cpu(lms.multi, true, 2), 2)});
  t.add_row({"LMS + direct Eq.(3) CPU",
             util::fmt(worst_p90_cpu(lms.multi, false, 1), 2),
             util::fmt(worst_p90_cpu(lms.multi, false, 2), 2)});
  t.add_row({"OLS + indirect CPU",
             util::fmt(worst_p90_cpu(ols.multi, true, 1), 2),
             util::fmt(worst_p90_cpu(ols.multi, true, 2), 2)});
  t.add_row({"OLS + direct Eq.(3) CPU",
             util::fmt(worst_p90_cpu(ols.multi, false, 1), 2),
             util::fmt(worst_p90_cpu(ols.multi, false, 2), 2)});
  const model::MultiVmModel no_alpha = without_alpha_term(lms);
  t.add_row({"LMS, alpha(N) overhead term dropped",
             util::fmt(worst_p90_cpu(no_alpha, true, 1), 2),
             util::fmt(worst_p90_cpu(no_alpha, true, 2), 2)});
  const QuadraticComponents quad = QuadraticComponents::fit(lms.data);
  t.add_row({"components + Mc^2 feature (beyond the paper)",
             util::fmt(worst_p90_cpu_quadratic(quad), 2), "-"});
  std::cout << t.str() << '\n';

  std::cout
      << "Reading:\n"
         "  - The fundamental limit: the paper's model is LINEAR while "
         "Dom0's\n"
         "    control-plane response is convex. Every estimator picks a "
         "compromise:\n"
         "    OLS over-predicts mid-range; strict LMS (median) fits the "
         "low-CPU bulk\n"
         "    and under-predicts enterprise loads. We fit with "
         "Rousseeuw's Least\n"
         "    Quantile of Squares at q=0.85 (his [24] generalization), "
         "the best of the\n"
         "    family on held-out application load.\n"
         "  - The alpha(N) term matters for co-located VMs (column 2):\n"
         "    without it the model misses the per-VM management "
         "overhead; for a single\n"
         "    VM it is inert by construction (alpha(1) = 0).\n"
         "  - The final row adds the one feature the linear form is "
         "missing (Mc^2)\n"
         "    to the Dom0/hypervisor component fits: the residual error "
         "collapses,\n"
         "    confirming the error source and pointing at the cheapest "
         "improvement\n"
         "    to the published model.\n";
  return 0;
}
