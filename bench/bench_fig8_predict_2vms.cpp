/// \file bench_fig8_predict_2vms.cpp
/// Reproduces Figure 8: prediction errors for a PM hosting TWO
/// co-located VMs — two independent RUBiS instances, both web servers
/// on PM1 and both database servers on PM2 (Sec. VI-A), validating the
/// Eq. (3) co-location model with alpha(2) = 1.
///
/// Paper anchors: 90 % of PM-CPU predictions under 2 % (PM1) / 5 %
/// (PM2); 90 % of PM-bandwidth predictions under 3.5 % for both PMs.

#include <iostream>

#include "model_common.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 8: resource utilization "
               "prediction, PM hosting two VMs ===\n"
               "Two independent RUBiS sets: 2 web VMs on PM1, 2 DB VMs on "
               "PM2.\n\n";
  const model::TrainedModels& models =
      bench::train_paper_models(model::RegressionMethod::kLms,
                                util::seconds(120.0), opts.jobs);

  const std::vector<int> clients = {300, 400, 500, 600, 700};
  runner::SweepRunner sweep(opts);
  std::vector<bench::RubisPrediction> runs =
      sweep.map(clients.size(), [&models, &clients](std::size_t i) {
        return bench::run_rubis_prediction(models.multi, /*instances=*/2,
                                           clients[i], 800 + i * 13);
      });

  auto col = [&runs](bool pm1, model::MetricIndex m) {
    std::vector<model::MetricEval*> v;
    for (auto& r : runs) v.push_back(&(pm1 ? r.pm1 : r.pm2).of(m));
    return v;
  };

  bench::print_error_table(
      "Figure 8(a): PM1 (2 web VMs) CPU prediction error CDF", clients,
      col(true, model::MetricIndex::kCpu), 2.0);
  bench::print_error_table(
      "Figure 8(b): PM2 (2 DB VMs) CPU prediction error CDF", clients,
      col(false, model::MetricIndex::kCpu), 5.0);
  bench::print_error_table(
      "Figure 8(c): PM1 (2 web VMs) bandwidth prediction error CDF",
      clients, col(true, model::MetricIndex::kBw), 3.5);
  bench::print_error_table(
      "Figure 8(d): PM2 (2 DB VMs) bandwidth prediction error CDF", clients,
      col(false, model::MetricIndex::kBw), 3.5);

  std::cout << "Shape notes (paper): bandwidth predictions beat CPU "
               "predictions because two co-located VMs impose little "
               "bandwidth overhead; PM2 errors exceed PM1 errors.\n";
  return 0;
}
