/// \file bench_baselines.cpp
/// Head-to-head comparison against the related-work baselines the
/// paper positions itself against (Sec. II): the naive sum-of-VMs
/// assumption of the placement literature [5]-[8], and a
/// Cherkasova-Gardner-style Dom0-from-I/O model [14]. All three
/// predict the PM CPU of the same RUBiS runs (Fig. 7's setup) and of
/// the four micro-benchmark sweeps.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "model_common.hpp"
#include "voprof/core/baselines.hpp"

namespace {

using namespace voprof;

struct Errors {
  util::RunningStats paper, dom0io, naive;
};

void accumulate(Errors& e, const model::TrainedModels& models,
                const model::Dom0IoModel& dom0io,
                const model::UtilVec& vm_sum, int n, double actual_pm_cpu) {
  const model::NaiveSumModel naive;
  e.paper.add(std::abs(models.multi.predict_pm_cpu_indirect(vm_sum, n) -
                       actual_pm_cpu) /
              actual_pm_cpu * 100.0);
  e.dom0io.add(std::abs(dom0io.predict_pm_cpu(vm_sum, n) - actual_pm_cpu) /
               actual_pm_cpu * 100.0);
  e.naive.add(std::abs(naive.predict_pm_cpu(vm_sum, n) - actual_pm_cpu) /
              actual_pm_cpu * 100.0);
}

}  // namespace

int main() {
  std::cout << "=== Baseline comparison: PM-CPU prediction error ===\n\n"
               "  paper model : Eq. (1)-(3), LMS, indirect PM CPU "
               "(Sec. V-VI)\n"
               "  Dom0-I/O    : Cherkasova & Gardner [14] style - Dom0 "
               "CPU from guest I/O+BW only,\n"
               "                no hypervisor term\n"
               "  naive sum   : PM = sum of VMs (placement works "
               "[5]-[8])\n\n";

  const model::TrainedModels& models = bench::train_paper_models();
  const model::Dom0IoModel dom0io = model::Dom0IoModel::fit(
      models.data, model::RegressionMethod::kLms);

  util::AsciiTable t("Mean |error| (%) by validation workload");
  t.set_header({"validation set", "paper model", "Dom0-I/O [14]",
                "naive sum [5-8]"});

  // --- Micro-benchmark validation (fresh seeds). -----------------------
  model::TrainerConfig vcfg;
  vcfg.duration = util::seconds(30.0);
  vcfg.seed = 777;
  const model::Trainer vtrainer(vcfg);
  const struct {
    wl::WorkloadKind kind;
    const char* label;
    int n;
  } cells[] = {
      {wl::WorkloadKind::kCpu, "CPU sweep L4, 1 VM", 1},
      {wl::WorkloadKind::kCpu, "CPU sweep L4, 2 VMs", 2},
      {wl::WorkloadKind::kBw, "BW sweep L4, 1 VM", 1},
      {wl::WorkloadKind::kBw, "BW sweep L4, 2 VMs", 2},
      {wl::WorkloadKind::kIo, "I/O sweep L4, 2 VMs", 2},
  };
  for (const auto& cell : cells) {
    Errors e;
    const model::TrainingSet v = vtrainer.collect_run(cell.kind, 3, cell.n);
    for (const auto& row : v.rows()) {
      accumulate(e, models, dom0io, row.vm_sum, row.n_vms, row.pm.cpu);
    }
    t.add_row({cell.label, util::fmt(e.paper.mean(), 2),
               util::fmt(e.dom0io.mean(), 2), util::fmt(e.naive.mean(), 2)});
  }

  // --- RUBiS validation (Fig. 7 setup, 500 clients). -------------------
  {
    const bench::RubisPrediction run =
        bench::run_rubis_prediction(models.multi, 1, 500, 4242);
    // Recompute per-sample errors for the baselines from the stored
    // series: vm_sum per sample is predicted/measured inside `run`,
    // so redo a lightweight pass here instead.
    Errors e1;
    const auto& cpu1 = run.pm1.of(model::MetricIndex::kCpu);
    for (double err : cpu1.errors_pct) e1.paper.add(err);
    t.add_rule();
    t.add_row({"RUBiS PM1 (web), 500 clients",
               util::fmt(e1.paper.mean(), 2), "see below", "see below"});
  }
  std::cout << t.str() << '\n';

  // For RUBiS the baselines need the raw series; run once more and
  // evaluate all three models sample-by-sample.
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 999);
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    rubis::DeployOptions opt;
    opt.clients = 500;
    const rubis::RubisInstance inst =
        rubis::deploy_rubis(cluster, 0, 1, 2, opt);
    engine.run_for(util::seconds(10.0));
    mon::MonitorScript mon(engine, cluster.machine(0));
    mon.start();
    engine.run_for(util::seconds(60.0));
    mon.stop();
    Errors e;
    const mon::SeriesSet& vm = mon.report().series(inst.web_vm);
    const mon::SeriesSet& pm =
        mon.report().series(mon::MeasurementReport::kPmKey);
    for (std::size_t i = 0; i < mon.report().sample_count(); ++i) {
      const model::UtilVec vm_sum{vm.cpu[i].value, vm.mem[i].value,
                                  vm.io[i].value, vm.bw[i].value};
      accumulate(e, models, dom0io, vm_sum, 1, pm.cpu[i].value);
    }
    std::printf(
        "RUBiS PM1 (web tier), per-second errors over 60 s:\n"
        "  paper model %.2f%%   Dom0-I/O %.2f%%   naive sum %.2f%%\n\n",
        e.paper.mean(), e.dom0io.mean(), e.naive.mean());
  }

  std::cout
      << "Reading:\n"
         "  - The naive sum misses the entire Dom0+hypervisor share "
         "(~20-45% of a core)\n"
         "    and is off by the largest margin everywhere - the paper's "
         "motivating point.\n"
         "  - The Dom0-I/O baseline recovers bandwidth-driven overhead "
         "but has no guest-CPU\n"
         "    term and no hypervisor model, so it degrades on CPU-heavy "
         "guests - the\n"
         "    specific critique in Sec. II ('neglected the CPU overhead "
         "in Xen hypervisor').\n";
  return 0;
}
