/// \file bench_perf_regression.cpp
/// Harness microbenchmarks of the regression back-ends: OLS
/// (Householder QR) vs Least Median of Squares (random elemental
/// subsets) across observation counts, plus full model fits and
/// prediction throughput. LMS is the paper's cited estimator [24];
/// this quantifies what its robustness costs. Emits
/// BENCH_perf_regression.json for the CI perf gate.

#include <cstdio>
#include <string>

#include "harness.hpp"
#include "voprof/core/overhead_model.hpp"
#include "voprof/core/regression.hpp"
#include "voprof/util/rng.hpp"

namespace {

using namespace voprof;
using bench::harness::BenchOptions;
using bench::harness::RepResult;
using bench::harness::Session;
using model::RegressionMethod;

struct Data {
  util::Matrix x;
  std::vector<double> y;
};

Data make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Data d{util::Matrix(n, 4), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) d.x(i, c) = rng.uniform(0, 100);
    d.y[i] = 5.0 + 1.1 * d.x(i, 0) + 0.01 * d.x(i, 3) + rng.gaussian(0, 0.5);
  }
  return d;
}

double fit_checksum(const model::LinearFit& fit) {
  double sum = fit.r_squared + fit.residual_rms;
  for (const double c : fit.coef) sum += c;
  return sum;
}

/// One rep = `fits_per_rep` complete fits, sized so a rep lands in the
/// milliseconds range where steady_clock timing is meaningful.
void bench_fit_ols(Session& session, std::size_t n, int fits_per_rep) {
  const Data d = make_data(n, 1);
  session.bench("fit_ols/n=" + std::to_string(n), BenchOptions{1, 9}, [&]() {
    double sum = 0.0;
    for (int i = 0; i < fits_per_rep; ++i) {
      sum += fit_checksum(model::fit_ols(d.x, d.y));
    }
    return RepResult{0.0, sum};
  });
}

void bench_fit_lms(Session& session, std::size_t n, int fits_per_rep) {
  const Data d = make_data(n, 2);
  session.bench("fit_lms/n=" + std::to_string(n), BenchOptions{1, 9}, [&]() {
    double sum = 0.0;
    for (int i = 0; i < fits_per_rep; ++i) {
      util::Rng rng(7);
      sum += fit_checksum(model::fit_lms(d.x, d.y, rng));
    }
    return RepResult{0.0, sum};
  });
}

void bench_single_vm_model_fit(Session& session) {
  util::Rng rng(3);
  model::TrainingSet data;
  for (int i = 0; i < 2400; ++i) {
    model::TrainingRow row;
    row.n_vms = 1;
    row.vm_sum = model::UtilVec{rng.uniform(0, 100), rng.uniform(80, 140),
                                rng.uniform(0, 90), rng.uniform(0, 1280)};
    row.pm = row.vm_sum * 1.2;
    row.dom0_cpu = 16.8 + 0.05 * row.vm_sum.cpu;
    row.hyp_cpu = 3.0 + 0.04 * row.vm_sum.cpu;
    data.add(row);
  }
  session.bench("single_vm_model_fit", BenchOptions{1, 9}, [&]() {
    const model::SingleVmModel m =
        model::SingleVmModel::fit(data, RegressionMethod::kOls);
    return RepResult{0.0,
                     fit_checksum(m.fit_for(model::MetricIndex::kCpu))};
  });
}

void bench_predict(Session& session) {
  util::Rng rng(4);
  model::TrainingSet data;
  for (int n : {1, 2, 4}) {
    for (int i = 0; i < 800; ++i) {
      model::TrainingRow row;
      row.n_vms = n;
      row.vm_sum = model::UtilVec{rng.uniform(0, 100.0 * n),
                                  rng.uniform(80, 140.0 * n),
                                  rng.uniform(0, 90.0 * n),
                                  rng.uniform(0, 1280.0 * n)};
      row.pm = row.vm_sum * 1.2 + model::UtilVec{18, 752, 19, 2} *
                                      (1.0 + 0.1 * (n - 1));
      row.dom0_cpu = 16.8 + 0.05 * row.vm_sum.cpu;
      row.hyp_cpu = 3.0 + 0.04 * row.vm_sum.cpu;
      data.add(row);
    }
  }
  const model::MultiVmModel m =
      model::MultiVmModel::fit(data, RegressionMethod::kOls);
  const model::UtilVec probe{120, 250, 40, 2000};
  constexpr int kPredictionsPerRep = 100000;
  session.bench("predict_x100000", BenchOptions{1, 9}, [&]() {
    double sum = 0.0;
    for (int i = 0; i < kPredictionsPerRep; ++i) {
      sum += m.predict(probe, 2).cpu;
      sum += m.predict_pm_cpu_indirect(probe, 2);
    }
    return RepResult{0.0, sum};
  });
}

}  // namespace

int main() {
  Session& session = Session::global();
  bench_fit_ols(session, 64, 400);
  bench_fit_ols(session, 1024, 50);
  bench_fit_ols(session, 16384, 4);
  bench_fit_lms(session, 64, 40);
  bench_fit_lms(session, 1024, 8);
  bench_fit_lms(session, 16384, 1);
  bench_single_vm_model_fit(session);
  bench_predict(session);
  session.write_file();
  std::printf("wrote %s (%zu benchmarks)\n", session.output_path().c_str(),
              session.measurements().size());
  return 0;
}
