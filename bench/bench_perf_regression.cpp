/// \file bench_perf_regression.cpp
/// google-benchmark microbenchmarks of the regression back-ends: OLS
/// (Householder QR) vs Least Median of Squares (random elemental
/// subsets) across observation counts, plus full model fits. LMS is
/// the paper's cited estimator [24]; this quantifies what its
/// robustness costs.

#include <benchmark/benchmark.h>

#include "voprof/core/overhead_model.hpp"
#include "voprof/core/regression.hpp"
#include "voprof/util/rng.hpp"

namespace {

using namespace voprof;
using model::RegressionMethod;

struct Data {
  util::Matrix x;
  std::vector<double> y;
};

Data make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Data d{util::Matrix(n, 4), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) d.x(i, c) = rng.uniform(0, 100);
    d.y[i] = 5.0 + 1.1 * d.x(i, 0) + 0.01 * d.x(i, 3) + rng.gaussian(0, 0.5);
  }
  return d;
}

void BM_FitOls(benchmark::State& state) {
  const Data d = make_data(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::fit_ols(d.x, d.y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FitOls)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_FitLms(benchmark::State& state) {
  const Data d = make_data(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(model::fit_lms(d.x, d.y, rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FitLms)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_SingleVmModelFit(benchmark::State& state) {
  util::Rng rng(3);
  model::TrainingSet data;
  for (int i = 0; i < 2400; ++i) {
    model::TrainingRow row;
    row.n_vms = 1;
    row.vm_sum = model::UtilVec{rng.uniform(0, 100), rng.uniform(80, 140),
                                rng.uniform(0, 90), rng.uniform(0, 1280)};
    row.pm = row.vm_sum * 1.2;
    row.dom0_cpu = 16.8 + 0.05 * row.vm_sum.cpu;
    row.hyp_cpu = 3.0 + 0.04 * row.vm_sum.cpu;
    data.add(row);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::SingleVmModel::fit(data, RegressionMethod::kOls));
  }
}
BENCHMARK(BM_SingleVmModelFit);

void BM_Predict(benchmark::State& state) {
  util::Rng rng(4);
  model::TrainingSet data;
  for (int n : {1, 2, 4}) {
    for (int i = 0; i < 800; ++i) {
      model::TrainingRow row;
      row.n_vms = n;
      row.vm_sum = model::UtilVec{rng.uniform(0, 100.0 * n),
                                  rng.uniform(80, 140.0 * n),
                                  rng.uniform(0, 90.0 * n),
                                  rng.uniform(0, 1280.0 * n)};
      row.pm = row.vm_sum * 1.2 + model::UtilVec{18, 752, 19, 2} *
                                      (1.0 + 0.1 * (n - 1));
      row.dom0_cpu = 16.8 + 0.05 * row.vm_sum.cpu;
      row.hyp_cpu = 3.0 + 0.04 * row.vm_sum.cpu;
      data.add(row);
    }
  }
  const model::MultiVmModel m =
      model::MultiVmModel::fit(data, RegressionMethod::kOls);
  const model::UtilVec probe{120, 250, 40, 2000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(probe, 2));
    benchmark::DoNotOptimize(m.predict_pm_cpu_indirect(probe, 2));
  }
}
BENCHMARK(BM_Predict);

}  // namespace

BENCHMARK_MAIN();
