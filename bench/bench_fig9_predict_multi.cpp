/// \file bench_fig9_predict_multi.cpp
/// Reproduces Figure 9: prediction errors for PMs hosting more than two
/// VMs — three independent RUBiS sets (three web VMs on PM1, three DB
/// VMs on PM2, six VMs total), exercising the alpha(N) extrapolation of
/// Eq. (3) at N = 3.
///
/// Paper anchors: 90 % of PM1 CPU predictions under 2 %; PM2 CPU errors
/// cluster around 4.5 %; 80 % of bandwidth predictions under 1 % on
/// both PMs.

#include <iostream>

#include "model_common.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 9: resource utilization "
               "prediction, PMs hosting three VMs each ===\n"
               "Three independent RUBiS sets: 3 web VMs on PM1, 3 DB VMs "
               "on PM2.\n\n";
  const model::TrainedModels& models =
      bench::train_paper_models(model::RegressionMethod::kLms,
                                util::seconds(120.0), opts.jobs);

  const std::vector<int> clients = {300, 400, 500, 600, 700};
  runner::SweepRunner sweep(opts);
  std::vector<bench::RubisPrediction> runs =
      sweep.map(clients.size(), [&models, &clients](std::size_t i) {
        return bench::run_rubis_prediction(models.multi, /*instances=*/3,
                                           clients[i], 900 + i * 13);
      });

  auto col = [&runs](bool pm1, model::MetricIndex m) {
    std::vector<model::MetricEval*> v;
    for (auto& r : runs) v.push_back(&(pm1 ? r.pm1 : r.pm2).of(m));
    return v;
  };

  bench::print_error_table(
      "Figure 9(a): PM1 (3 web VMs) CPU prediction error CDF", clients,
      col(true, model::MetricIndex::kCpu), 2.0);
  bench::print_error_table(
      "Figure 9(b): PM2 (3 DB VMs) CPU prediction error CDF", clients,
      col(false, model::MetricIndex::kCpu), 4.5);
  bench::print_error_table(
      "Figure 9(c): PM1 (3 web VMs) bandwidth prediction error CDF",
      clients, col(true, model::MetricIndex::kBw), 1.0);
  bench::print_error_table(
      "Figure 9(d): PM2 (3 DB VMs) bandwidth prediction error CDF", clients,
      col(false, model::MetricIndex::kBw), 1.0);

  // 80 %-under-1 % bandwidth claim.
  double worst_p80_bw = 0.0;
  for (auto& r : runs) {
    worst_p80_bw = std::max(
        worst_p80_bw,
        std::max(r.pm1.of(model::MetricIndex::kBw).error_at_fraction(0.8),
                 r.pm2.of(model::MetricIndex::kBw).error_at_fraction(0.8)));
  }
  std::printf("Worst 80%% bandwidth error bound: %.2f%% (paper: 80%% of "
              "predictions within 1%% on both PMs)\n",
              worst_p80_bw);
  return 0;
}
