/// \file bench_ext_hetero.cpp
/// Extension bench — the paper's stated future work (Sec. VII):
/// overhead estimation for *different types of VMs with diverse
/// configurations* co-located in one PM. Compares the homogeneous
/// Eq. (3) model against the typed HeteroModel on mixed small/large
/// deployments neither model saw during training.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "voprof/core/hetero_trainer.hpp"
#include "voprof/core/trainer.hpp"
#include "voprof/util/table.hpp"

namespace {

using namespace voprof;

struct ErrPair {
  double typed_mean = 0.0;
  double homog_mean = 0.0;
};

ErrPair evaluate_mix(const model::HeteroTrainer& htrainer,
                     const model::HeteroModel& typed,
                     const model::MultiVmModel& homog,
                     const std::vector<int>& mix, wl::WorkloadKind kind,
                     std::size_t level) {
  const model::HeteroTrainingSet validation =
      htrainer.collect_run(mix, kind, level);
  ErrPair e;
  for (const auto& r : validation.rows()) {
    const double actual = r.pm.cpu;
    e.typed_mean +=
        std::abs(typed.predict_pm_cpu_indirect(r.types) - actual) / actual;
    e.homog_mean += std::abs(homog.predict_pm_cpu_indirect(
                                 r.grand_sum(), r.total_vms()) -
                             actual) /
                    actual;
  }
  const auto n = static_cast<double>(validation.size());
  e.typed_mean = e.typed_mean / n * 100.0;
  e.homog_mean = e.homog_mean / n * 100.0;
  return e;
}

}  // namespace

int main() {
  std::cout
      << "=== Extension: heterogeneous-VM overhead model (paper future "
         "work, Sec. VII) ===\n\n"
         "VM types: small = 1 VCPU / 256 MiB (the paper's guest);\n"
         "          large = 2 VCPU / 512 MiB, doubled vdisk cap, two "
         "workload instances.\n\n"
         "Training the typed model on mixes {1S},{2S},{1L},{2L},{1S+1L},"
         "{2S+1L},{2S+2L}\nand the homogeneous Eq.(3) model on the "
         "standard single-type sweep...\n\n";

  namespace harness = voprof::bench::harness;
  harness::Session& session = harness::Session::global();
  const auto t0 = std::chrono::steady_clock::now();

  model::HeteroTrainerConfig hcfg = model::HeteroTrainerConfig::defaults();
  hcfg.duration = util::seconds(45.0);
  const model::HeteroTrainer htrainer(hcfg);
  const model::HeteroModel typed =
      htrainer.train(model::RegressionMethod::kOls);
  const model::HeteroModel typed_lms =
      htrainer.train(model::RegressionMethod::kLms);

  model::TrainerConfig tcfg;
  tcfg.duration = util::seconds(45.0);
  tcfg.seed = 15;
  const model::TrainedModels homog =
      model::Trainer(tcfg).train(model::RegressionMethod::kLms);

  session.record_section(
      "hetero_training",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count(),
      0.0, static_cast<double>(homog.data.size()));

  util::AsciiTable t(
      "Mean PM-CPU prediction error (%) on held-out mixed deployments");
  t.set_header({"deployment", "workload", "typed (OLS)", "typed (LMS)",
                "homogeneous Eq.(3)"});
  const struct {
    std::vector<int> mix;
    const char* label;
  } mixes[] = {
      {{2, 1}, "2 small + 1 large"},
      {{1, 2}, "1 small + 2 large"},
      {{3, 1}, "3 small + 1 large"},
  };
  double typed_worst = 0.0, homog_worst = 0.0;
  for (const auto& m : mixes) {
    for (const auto kind : {wl::WorkloadKind::kCpu, wl::WorkloadKind::kBw}) {
      const ErrPair ols = evaluate_mix(htrainer, typed, homog.multi, m.mix,
                                       kind, 3);
      const ErrPair lms = evaluate_mix(htrainer, typed_lms, homog.multi,
                                       m.mix, kind, 3);
      t.add_row({m.label, wl::kind_name(kind), util::fmt(ols.typed_mean, 2),
                 util::fmt(lms.typed_mean, 2),
                 util::fmt(ols.homog_mean, 2)});
      typed_worst = std::max(typed_worst, ols.typed_mean);
      homog_worst = std::max(homog_worst, ols.homog_mean);
    }
  }
  std::cout << t.str() << '\n';
  std::printf(
      "Worst-case mean error: typed(OLS) %.2f%% vs homogeneous %.2f%%\n\n",
      typed_worst, homog_worst);
  std::cout
      << "Findings:\n"
         "  1. The typed model (OLS) matches the homogeneous model on "
         "mixed deployments\n"
         "     to within a fraction of a percent - in this substrate the "
         "multi-VM saturation\n"
         "     caps (Dom0 plateau 23.4%, hypervisor 12%) flatten most "
         "composition effects,\n"
         "     so Eq. (3)'s count-based term loses little. The typed "
         "model is the safe choice\n"
         "     when configurations diverge further (bigger VCPU counts, "
         "different I/O caps).\n"
         "  2. Estimator choice interacts with the model: LMS - the "
         "right call for the\n"
         "     homogeneous model - destabilizes on the typed design's "
         "collinear blocks\n"
         "     (random elemental subsets go near-singular). Use OLS (or "
         "a ridge variant)\n"
         "     for the typed extension.\n";
  return 0;
}
