#pragma once
/// \file harness.hpp
/// Machine-readable benchmark harness for the bench_* binaries.
///
/// Every bench binary owns a Session (usually the process-wide
/// Session::global()). Perf benches drive Session::bench — warmup
/// runs, N timed repetitions, median/p10/p90 wall-time statistics and
/// sim-seconds-per-wall-second throughput — while the figure/table
/// reproductions record their sweeps as one-shot sections via
/// bench/common.hpp. On exit the session serializes everything,
/// including a capture of the build/runtime environment, to
/// BENCH_<name>.json (util::Json, schema "voprof-bench-1") so the perf
/// trajectory can be diffed across commits with `voprofctl bench-diff`
/// and gated in CI.
///
/// Environment knobs:
///   VOPROF_BENCH_DIR     output directory (default: current directory)
///   VOPROF_BENCH_JSON=0  disable the JSON emission entirely
///   VOPROF_BENCH_REPS    override repetitions of every Session::bench
///   VOPROF_BENCH_WARMUP  override warmup runs of every Session::bench

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "voprof/util/json.hpp"

namespace voprof::bench::harness {

/// What one timed repetition reports back to the harness.
struct RepResult {
  /// Simulated seconds advanced during the rep; 0 when the benchmark
  /// has no simulation clock (e.g. the regression fits).
  double sim_s = 0.0;
  /// Order-independent digest of the rep's computed results. Committed
  /// to the JSON (last rep) so baseline diffs can prove two builds ran
  /// the same deterministic workload, not just at different speeds.
  double checksum = 0.0;
};

/// Repetition policy for Session::bench.
struct BenchOptions {
  int warmup = 1;  ///< untimed runs before measurement
  int reps = 5;    ///< timed repetitions (>= 1)
};

/// Order statistics over the timed repetitions.
struct Stats {
  double min = 0.0;
  double p10 = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;

  /// Compute from a non-empty sample (copies, then sorts).
  [[nodiscard]] static Stats of(std::vector<double> xs);
};

/// One benchmark's recorded repetitions.
struct Measurement {
  std::string name;
  int warmup = 0;
  int reps = 0;
  double sim_s = 0.0;    ///< simulated seconds per rep (0 = n/a)
  double checksum = 0.0; ///< last rep's RepResult::checksum
  std::vector<double> wall_s;      ///< per-rep wall seconds
  std::vector<double> throughput;  ///< per-rep sim_s / wall_s (may be empty)
};

/// Snapshot of the build and host environment, embedded in the JSON so
/// a baseline file is self-describing.
struct EnvInfo {
  std::string compiler;
  std::string build_type;
  std::string sanitizers;
  std::string git_describe;  ///< `git describe --always --dirty` at configure
  std::string cxx_flags;     ///< effective CMAKE_CXX_FLAGS for the build type
  std::string os;
  int hardware_threads = 0;
  std::string timestamp_utc;
};

[[nodiscard]] EnvInfo capture_env();

/// Collects measurements and writes BENCH_<name>.json.
class Session {
 public:
  /// \param binary_name  the executable's name; a leading "bench_" is
  ///        stripped for the output file name.
  explicit Session(std::string binary_name);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Run `body` warmup + reps times, timing each rep.
  void bench(const std::string& name, BenchOptions opt,
             const std::function<RepResult()>& body);

  /// Record an externally timed one-shot section (the figure benches'
  /// sweeps, timed inside bench::measure_cells).
  void record_section(const std::string& name, double wall_s,
                      double sim_s = 0.0, double checksum = 0.0);

  /// Deterministic name for an unlabeled section: "<hint>#<counter>".
  [[nodiscard]] std::string next_section_name(const std::string& hint);

  [[nodiscard]] const std::string& binary_name() const noexcept {
    return binary_name_;
  }
  [[nodiscard]] const std::vector<Measurement>& measurements() const noexcept {
    return measurements_;
  }

  [[nodiscard]] util::Json to_json() const;

  /// $VOPROF_BENCH_DIR/BENCH_<stem>.json (default directory ".").
  [[nodiscard]] std::string output_path() const;

  /// Serialize now. Respects VOPROF_BENCH_JSON=0. Idempotent per
  /// session unless more measurements arrive in between.
  void write_file();

  /// The destructor writes the file when measurements were recorded
  /// and no explicit write happened; benches that must not touch the
  /// filesystem can turn this off.
  void set_auto_write(bool enabled) noexcept { auto_write_ = enabled; }

  /// Process-wide session named after the running executable. All of
  /// bench/common.hpp records here.
  [[nodiscard]] static Session& global();

 private:
  std::string binary_name_;
  EnvInfo env_;
  std::vector<Measurement> measurements_;
  int section_counter_ = 0;
  bool auto_write_ = true;
  bool dirty_ = false;
};

}  // namespace voprof::bench::harness
