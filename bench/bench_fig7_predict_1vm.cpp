/// \file bench_fig7_predict_1vm.cpp
/// Reproduces Figure 7: CDF of prediction errors when the model
/// predicts the resource utilizations of a PM hosting ONE VM — the
/// Fig. 6 setup with a single RUBiS instance (web VM on PM1, DB VM on
/// PM2), loaded by 300..700 simultaneous clients.
///
/// Paper anchors: 90 % of the PM-CPU predictions err below 3 % (PM1)
/// and 4 % (PM2); 90 % of the PM-bandwidth predictions err below 4 %,
/// 80 % below 1 %. PM2's errors exceed PM1's because the DB tier has
/// lower bandwidth utilization, and errors shrink with more clients.

#include <iostream>

#include "model_common.hpp"
#include "voprof/rubis/deployment.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 7: resource utilization "
               "prediction, PM hosting one VM ===\n"
               "Training the Sec. V models from the Table II sweep "
               "(this is the Sec. VI-A procedure)...\n\n";
  const model::TrainedModels& models =
      bench::train_paper_models(model::RegressionMethod::kLms,
                                util::seconds(120.0), opts.jobs);

  // One prediction run per client count, fanned over the workers with
  // the historical per-run seeds.
  const std::vector<int> clients = {300, 400, 500, 600, 700};
  runner::SweepRunner sweep(opts);
  std::vector<bench::RubisPrediction> runs =
      sweep.map(clients.size(), [&models, &clients](std::size_t i) {
        return bench::run_rubis_prediction(models.multi, /*instances=*/1,
                                           clients[i], 700 + i * 13);
      });

  auto col = [&runs](bool pm1, model::MetricIndex m) {
    std::vector<model::MetricEval*> v;
    for (auto& r : runs) v.push_back(&(pm1 ? r.pm1 : r.pm2).of(m));
    return v;
  };

  bench::print_error_table(
      "Figure 7(a): PM1 (web) CPU prediction error CDF", clients,
      col(true, model::MetricIndex::kCpu), 3.0);
  bench::print_error_table(
      "Figure 7(b): PM2 (database) CPU prediction error CDF", clients,
      col(false, model::MetricIndex::kCpu), 4.0);
  bench::print_error_table(
      "Figure 7(c): PM1 (web) bandwidth prediction error CDF", clients,
      col(true, model::MetricIndex::kBw), 4.0);
  bench::print_error_table(
      "Figure 7(d): PM2 (database) bandwidth prediction error CDF", clients,
      col(false, model::MetricIndex::kBw), 4.0);

  // Shape checks the paper highlights.
  const double pm1_cpu_p90_300 =
      runs.front().pm1.of(model::MetricIndex::kCpu).error_at_fraction(0.9);
  const double pm1_cpu_p90_700 =
      runs.back().pm1.of(model::MetricIndex::kCpu).error_at_fraction(0.9);
  std::cout << "Shape: PM1 CPU 90% error at 300 clients = "
            << util::fmt(pm1_cpu_p90_300, 2) << "%, at 700 clients = "
            << util::fmt(pm1_cpu_p90_700, 2)
            << "% (paper: errors decrease with more clients)\n\n";

  // The paper's exact protocol: "created a variable rate workload for
  // RUBiS by increasing the number of clients over a ten minute
  // period ... loaded between 300 and 700 simultaneous clients. ...
  // made predictions for every measurement for a 10 minute interval."
  std::cout << "Variable-rate protocol: 300 -> 700 clients ramped over "
               "10 simulated minutes, per-second predictions:\n";
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 771);
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    cluster.add_machine(sim::MachineSpec{});
    rubis::DeployOptions opt;
    opt.clients = 300;
    const rubis::RubisInstance inst =
        rubis::deploy_rubis(cluster, 0, 1, 2, opt);
    rubis::schedule_client_ramp(engine, *inst.client, 300, 700,
                                util::seconds(600.0), 4);
    engine.run_for(util::seconds(10.0));
    mon::MonitorScript mon1(engine, cluster.machine(0));
    mon::MonitorScript mon2(engine, cluster.machine(1));
    mon1.start();
    mon2.start();
    engine.run_for(util::seconds(600.0));
    mon1.stop();
    mon2.stop();
    const model::Predictor predictor(models.multi);
    const auto e1 = predictor.evaluate(mon1.report(), {inst.web_vm});
    const auto e2 = predictor.evaluate(mon2.report(), {inst.db_vm});
    std::printf(
        "  PM1: CPU p90 err %.2f%%, BW p90 err %.2f%% over %zu samples\n",
        e1.of(model::MetricIndex::kCpu).error_at_fraction(0.9),
        e1.of(model::MetricIndex::kBw).error_at_fraction(0.9),
        e1.of(model::MetricIndex::kCpu).predicted.size());
    std::printf(
        "  PM2: CPU p90 err %.2f%%, BW p90 err %.2f%% over %zu samples\n",
        e2.of(model::MetricIndex::kCpu).error_at_fraction(0.9),
        e2.of(model::MetricIndex::kBw).error_at_fraction(0.9),
        e2.of(model::MetricIndex::kCpu).predicted.size());
  }
  return 0;
}
