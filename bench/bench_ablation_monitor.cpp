/// \file bench_ablation_monitor.cpp
/// Ablation of the measurement methodology (Sec. III-A): what happens
/// to the measured utilizations — and to a model trained on them —
/// when the monitoring tools' self-overhead is ignored. This is the
/// quantitative version of Table I's motivation: tools perturb the
/// system they measure, so the paper builds one synchronized script
/// and accounts for it.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "voprof/workloads/hogs.hpp"

namespace {

using namespace voprof;

mon::UtilSample measure_dom0(bool inject, double vm_cpu, std::uint64_t seed) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, seed);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(std::make_unique<wl::CpuHog>(vm_cpu, seed + 1));
  mon::MonitorConfig cfg;
  cfg.inject_overhead = inject;
  mon::MonitorScript mon(engine, pm, cfg);
  return mon.measure(util::seconds(60.0))
      .mean(mon::MeasurementReport::kDom0Key);
}

mon::UtilSample measure_vm(bool inject, std::uint64_t seed) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, seed);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec spec;
  spec.name = "vm1";
  pm.add_vm(spec).attach(std::make_unique<wl::IoHog>(46.0, seed + 1));
  mon::MonitorConfig cfg;
  cfg.inject_overhead = inject;
  mon::MonitorScript mon(engine, pm, cfg);
  return mon.measure(util::seconds(60.0)).mean("vm1");
}

}  // namespace

int main() {
  std::cout << "=== Ablation: monitoring self-overhead (Table I "
               "motivation) ===\n\n";

  util::AsciiTable t("Measured Dom0 CPU with vs without tool overhead");
  t.set_header({"VM CPU load", "Dom0 CPU, tools injected",
                "Dom0 CPU, overhead-free", "delta"});
  for (double load : {1.0, 50.0, 99.0}) {
    const auto with = measure_dom0(true, load, 9000 +
                                   static_cast<std::uint64_t>(load));
    const auto without = measure_dom0(false, load, 9100 +
                                      static_cast<std::uint64_t>(load));
    t.add_row({util::fmt(load, 0) + "%", util::fmt(with.cpu_pct, 2),
               util::fmt(without.cpu_pct, 2),
               util::fmt(with.cpu_pct - without.cpu_pct, 2)});
  }
  std::cout << t.str() << '\n';

  const auto vm_with = measure_vm(true, 9200);
  const auto vm_without = measure_vm(false, 9201);
  std::printf(
      "In-VM agent perturbation under the I/O benchmark: VM CPU %.3f%% "
      "(tools in VM) vs %.3f%% (clean) -> +%.3f%%\n\n",
      vm_with.cpu_pct, vm_without.cpu_pct,
      vm_with.cpu_pct - vm_without.cpu_pct);

  std::cout
      << "Reading: the Dom0-side tools cost ~0.45% CPU and the in-VM\n"
         "agent ~0.05%; the paper's reported 16.8% Dom0 baseline includes\n"
         "the running script. A model trained on overhead-free counters\n"
         "would under-estimate Dom0 CPU by that amount on every\n"
         "monitored production host - small here, but exactly the kind\n"
         "of systematic bias the paper's synchronized-script design\n"
         "avoids relative to stacking ad-hoc tools with unknown cost.\n";
  return 0;
}
