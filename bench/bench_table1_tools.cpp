/// \file bench_table1_tools.cpp
/// Reproduces Table I: the capability matrix of the measurement tools
/// (which (entity, metric) cells each tool can observe, and where it
/// must run), and demonstrates the self-overhead that motivates the
/// paper's combined measurement script.

#include <iostream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "voprof/monitor/tools.hpp"

namespace {

using namespace voprof;
using mon::EntityClass;
using mon::Metric;
using mon::Tool;

std::string cell(const Tool& tool, EntityClass entity, Metric metric) {
  if (!tool.can_measure(entity, metric)) return "-";
  // Table I stars the cells that need the tool inside the VM.
  if (entity == EntityClass::kVm &&
      tool.info().host == mon::ToolHost::kGuest) {
    return "Y*";
  }
  if (entity == EntityClass::kVm &&
      (tool.info().name == "mpstat" || tool.info().name == "vmstat" ||
       tool.info().name == "ifconfig")) {
    return "Y*";
  }
  return "Y";
}

}  // namespace

int main() {
  std::cout << "=== Reproduction of Table I: features of measurement "
               "tools ===\n\n";

  std::vector<std::unique_ptr<Tool>> tools;
  tools.push_back(std::make_unique<mon::XenTop>());
  tools.push_back(std::make_unique<mon::TopTool>());
  tools.push_back(std::make_unique<mon::MpStat>());
  tools.push_back(std::make_unique<mon::IfConfig>());
  tools.push_back(std::make_unique<mon::VmStat>());

  util::AsciiTable t("Table I (Y = can measure, - = cannot, * = runs in VM)");
  t.set_header({"tool", "VM:cpu", "mem", "io", "bw", "Dom0:cpu", "mem", "io",
                "bw", "PM/hyp:cpu", "mem", "io", "bw"});
  for (const auto& tool : tools) {
    std::vector<std::string> row = {tool->info().name};
    for (EntityClass e : {EntityClass::kVm, EntityClass::kDom0,
                          EntityClass::kPmOrHypervisor}) {
      for (Metric m : {Metric::kCpu, Metric::kMem, Metric::kIo, Metric::kBw}) {
        row.push_back(cell(*tool, e, m));
      }
    }
    t.add_row(row);
  }
  std::cout << t.str() << '\n';

  util::AsciiTable o("Tool self-overhead (why the paper uses one script)");
  o.set_header({"tool", "runs in", "CPU overhead (% of a core)"});
  for (const auto& tool : tools) {
    o.add_row({tool->info().name,
               tool->info().host == mon::ToolHost::kDom0 ? "Dom0" : "guest VM",
               util::fmt(tool->info().self_cpu_pct, 2)});
  }
  std::cout << o.str() << '\n';

  // Demonstrate the perturbation: the same idle testbed measured with
  // and without tool overhead injection.
  std::cout << "Perturbation demo (idle testbed, 60 s):\n";
  for (bool inject : {false, true}) {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::CostModel{}, 7);
    sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
    sim::VmSpec spec;
    spec.name = "vm1";
    pm.add_vm(spec);
    mon::MonitorConfig cfg;
    cfg.inject_overhead = inject;
    mon::MonitorScript mon(engine, pm, cfg);
    const auto& report = mon.measure(util::seconds(60.0));
    std::printf("  overhead %s: Dom0 CPU = %.2f%%  (VM CPU = %.2f%%)\n",
                inject ? "injected" : "disabled",
                report.mean(mon::MeasurementReport::kDom0Key).cpu_pct,
                report.mean("vm1").cpu_pct);
  }
  std::cout << "  paper's 16.8% Dom0 baseline includes the running "
               "script.\n";
  return 0;
}
