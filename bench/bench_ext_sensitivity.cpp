/// \file bench_ext_sensitivity.cpp
/// Calibration-sensitivity study: every CostModel constant is anchored
/// to a sentence in the paper, but how much do the reproduced results
/// depend on each one? Perturb the load-bearing constants by +-30 %
/// and report which headline numbers move — and, crucially, whether
/// the *qualitative* claims (orderings, plateaus, slopes' existence)
/// survive. A reproduction whose conclusions flip under small
/// calibration error would be fragile; this one is not.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "voprof/core/predictor.hpp"
#include "voprof/core/trainer.hpp"

namespace {

using namespace voprof;

/// Headline observables under one cost model.
struct Headline {
  double dom0_at_99 = 0.0;     ///< Fig 2(a) endpoint
  double hyp_at_99 = 0.0;      ///< Fig 2(a) endpoint
  double dom0_bw_slope = 0.0;  ///< Fig 2(e)
  double vm_sat_4 = 0.0;       ///< Fig 4(a) per-VM saturation
  double io_ratio = 0.0;       ///< Fig 2(b)
};

Headline measure(const sim::CostModel& costs) {
  Headline h;
  auto cell = [&costs](wl::WorkloadKind kind, double value, int n,
                       std::uint64_t seed) {
    sim::Engine engine;
    sim::Cluster cluster(engine, costs, seed);
    sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
    for (int i = 0; i < n; ++i) {
      sim::VmSpec spec;
      spec.name = "vm" + std::to_string(i + 1);
      pm.add_vm(spec).attach(wl::make_workload_value(
          kind, value, sim::NetTarget{}, seed + static_cast<std::uint64_t>(i)));
    }
    mon::MonitorScript mon(engine, pm);
    const auto& r = mon.measure(util::seconds(40.0));
    return std::make_tuple(r.mean("vm1"),
                           r.mean(mon::MeasurementReport::kDom0Key),
                           r.mean(mon::MeasurementReport::kHypKey),
                           r.mean(mon::MeasurementReport::kPmKey));
  };
  {
    const auto [vm, dom0, hyp, pm] = cell(wl::WorkloadKind::kCpu, 99, 1, 11);
    h.dom0_at_99 = dom0.cpu_pct;
    h.hyp_at_99 = hyp.cpu_pct;
  }
  {
    const auto lo = cell(wl::WorkloadKind::kBw, 1.0, 1, 13);
    const auto hi = cell(wl::WorkloadKind::kBw, 1280.0, 1, 17);
    h.dom0_bw_slope =
        (std::get<1>(hi).cpu_pct - std::get<1>(lo).cpu_pct) / 1279.0;
  }
  {
    const auto [vm, dom0, hyp, pm] = cell(wl::WorkloadKind::kCpu, 100, 4, 19);
    h.vm_sat_4 = vm.cpu_pct;
  }
  {
    const auto [vm, dom0, hyp, pm] = cell(wl::WorkloadKind::kIo, 72, 1, 23);
    h.io_ratio = pm.io_blocks_per_s / vm.io_blocks_per_s;
  }
  return h;
}

}  // namespace

int main() {
  std::cout << "=== Extension: calibration sensitivity of the reproduced "
               "headlines ===\n\n"
               "Each row perturbs ONE cost-model constant by the given "
               "factor and re-measures\nthe headline observables "
               "(40 s cells). Baseline = the calibrated model.\n\n";

  util::AsciiTable t("Headline observables under perturbation");
  t.set_header({"perturbation", "Dom0@99% (29.5)", "hyp@99% (14.0)",
                "Dom0 bw slope (.0105)", "VM sat 4VMs (47.5)",
                "I/O ratio (2.3)"});
  auto row = [&t](const std::string& label, const Headline& h) {
    t.add_row({label, util::fmt(h.dom0_at_99, 1), util::fmt(h.hyp_at_99, 1),
               util::fmt(h.dom0_bw_slope, 4), util::fmt(h.vm_sat_4, 1),
               util::fmt(h.io_ratio, 2)});
  };

  row("baseline (calibrated)", measure(sim::CostModel{}));
  {
    sim::CostModel c;
    c.dom0_ctrl_quad *= 1.3;
    row("dom0_ctrl_quad x1.3", measure(c));
  }
  {
    sim::CostModel c;
    c.dom0_ctrl_quad *= 0.7;
    row("dom0_ctrl_quad x0.7", measure(c));
  }
  {
    sim::CostModel c;
    c.dom0_cpu_per_kbps_inter *= 1.3;
    row("dom0_cpu_per_kbps x1.3", measure(c));
  }
  {
    sim::CostModel c;
    c.hyp_sched_quad *= 1.3;
    row("hyp_sched_quad x1.3", measure(c));
  }
  {
    sim::CostModel c;
    c.multi_vm_sched_efficiency = 0.90;
    row("sched efficiency 0.90", measure(c));
  }
  {
    sim::CostModel c;
    c.dom0_base_cpu_pct *= 1.3;
    row("dom0 base x1.3", measure(c));
  }
  std::cout << t.str() << '\n';

  std::cout
      << "Reading:\n"
         "  - Each constant moves exactly the observable it was anchored "
         "to (per-kbps ->\n"
         "    Fig 2e slope, efficiency -> Fig 4a saturation, base -> Fig "
         "2a level) and\n"
         "    leaves the others alone: the calibration is orthogonal, so "
         "each paper anchor\n"
         "    pins one knob.\n"
         "  - Increasing the quadratic terms does NOT move the 99% "
         "endpoints: the\n"
         "    saturation caps (12.7%/11% extra) bind there, absorbing "
         "upward error -\n"
         "    decreasing them does show through (29.5 -> 26.0). The caps "
         "make the\n"
         "    reproduction one-sided robust, exactly like a real Dom0 "
         "that cannot spend\n"
         "    more than the CPU it is given.\n"
         "  - No perturbation flips a qualitative claim (Dom0 grows "
         "convexly, saturation\n"
         "    plateaus exist, I/O ~2x): conclusions are robust to "
         "calibration error;\n"
         "    only decimal places move.\n";

  // Does the *model pipeline* care? Train on a perturbed world and
  // check prediction accuracy is unchanged (the method adapts).
  std::cout << "\nMethod robustness: train + validate inside the "
               "perturbed world (dom0_ctrl_quad x1.3):\n";
  {
    sim::CostModel perturbed;
    perturbed.dom0_ctrl_quad *= 1.3;
    model::TrainerConfig cfg;
    cfg.duration = util::seconds(20.0);
    cfg.costs = perturbed;
    cfg.seed = 99;
    const model::Trainer trainer(cfg);
    const model::TrainedModels models =
        trainer.train(model::RegressionMethod::kLms);
    const model::TrainingSet validation =
        trainer.collect_run(wl::WorkloadKind::kBw, 3, 2);
    util::RunningStats err;
    for (const auto& r : validation.rows()) {
      err.add(std::abs(models.multi.predict_pm_cpu_indirect(r.vm_sum, 2) -
                       r.pm.cpu) /
              r.pm.cpu * 100.0);
    }
    std::printf("  mean PM-CPU error: %.2f%% (the regression re-fits "
                "whatever world it measures - the paper's method, not "
                "its constants, is what this repo reproduces)\n",
                err.mean());
  }
  return 0;
}
