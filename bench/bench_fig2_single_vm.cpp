/// \file bench_fig2_single_vm.cpp
/// Reproduces Figure 2 of the paper: resource utilizations of the VM,
/// Dom0, hypervisor and PM for a single guest VM running each Table II
/// workload sweep. Prints measured values alongside the anchor values
/// the paper's text states; points the paper does not quote
/// numerically are printed without an anchor.
///
/// Cells fan across workers (`--jobs N`, default all hardware
/// threads); each keeps its historical per-cell seed, so the output is
/// byte-identical to the serial run for every jobs value.

#include <cstdio>
#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using bench::measure_sweep;
using bench::only;
using bench::vs;
using wl::WorkloadKind;

void fig2a(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 2(a): CPU utilizations for CPU-intensive workload (1 VM)");
  t.set_header({"input(%)", "VM", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {1, 30, 60, 90, 99};
  const auto cells = measure_sweep(WorkloadKind::kCpu, inputs, 100, 1, false,
                                   opts);
  double dom0_first = 0, dom0_last = 0, hyp_first = 0, hyp_last = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    std::vector<std::string> row = {only(in, 0), vs(r.vm.cpu_pct, in)};
    if (in == 1) {
      row.push_back(vs(r.dom0.cpu_pct, 16.8));
      row.push_back(vs(r.hyp.cpu_pct, 3.0));
      dom0_first = r.dom0.cpu_pct;
      hyp_first = r.hyp.cpu_pct;
    } else if (in == 99) {
      row.push_back(vs(r.dom0.cpu_pct, 29.5));
      row.push_back(vs(r.hyp.cpu_pct, 14.0));
      dom0_last = r.dom0.cpu_pct;
      hyp_last = r.hyp.cpu_pct;
    } else {
      row.push_back(only(r.dom0.cpu_pct));
      row.push_back(only(r.hyp.cpu_pct));
    }
    t.add_row(row);
  }
  std::cout << t.str();
  bench::verdict("Dom0 CPU rise over sweep (paper: 16.8 -> 29.5)",
                 dom0_last - dom0_first, 12.7, 1.5);
  bench::verdict("Hypervisor CPU rise over sweep (paper: 3 -> 14)",
                 hyp_last - hyp_first, 11.0, 1.0);
  std::cout << '\n';
}

void fig2b(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 2(b): I/O utilizations for I/O-intensive workload (1 VM)");
  t.set_header({"input(blk/s)", "VM", "Dom0", "PM"});
  const std::vector<double> inputs = {15, 19, 27, 46, 72};
  const auto cells = measure_sweep(WorkloadKind::kIo, inputs, 200, 1, false,
                                   opts);
  double ratio_at_max = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    t.add_row({only(in, 0), vs(r.vm.io_blocks_per_s, in),
               vs(r.dom0.io_blocks_per_s, 0.0),
               only(r.pm.io_blocks_per_s)});
    if (in == 72.0) ratio_at_max = r.pm.io_blocks_per_s / r.vm.io_blocks_per_s;
  }
  std::cout << t.str();
  bench::verdict("PM/VM I/O ratio (paper: 'slightly more than twice')",
                 ratio_at_max, 2.3, 0.35);
  std::cout << '\n';
}

void fig2c(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 2(c): CPU utilizations for I/O-intensive workload (1 VM)");
  t.set_header({"input(blk/s)", "VM", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {15, 19, 27, 46, 72};
  const auto cells = measure_sweep(WorkloadKind::kIo, inputs, 300, 1, false,
                                   opts);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& r = cells[i];
    t.add_row({only(inputs[i], 0), vs(r.vm.cpu_pct, 0.84, 2),
               vs(r.dom0.cpu_pct, 16.8), vs(r.hyp.cpu_pct, 2.8)});
  }
  std::cout << t.str();
  std::cout << "  paper: all three CPU series stay flat across the I/O "
               "sweep (VM I/O cap ~90 blk/s)\n\n";
}

void fig2d(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 2(d): BW utilizations for BW-intensive workload (1 VM)");
  t.set_header({"input(Kb/s)", "VM", "Dom0", "PM", "overhead(B/s)"});
  const std::vector<double> inputs = {1, 160, 320, 640, 1280};
  const auto cells = measure_sweep(WorkloadKind::kBw, inputs, 400, 1, false,
                                   opts);
  double overhead_at_max = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    const double overhead_bps =
        util::kbps_to_bytes_per_s(r.pm.bw_kbps - r.vm.bw_kbps);
    t.add_row({only(in, 0), vs(r.vm.bw_kbps, in, 0),
               vs(r.dom0.bw_kbps, 0.0, 0), only(r.pm.bw_kbps, 0),
               only(overhead_bps, 0)});
    if (in == 1280.0) overhead_at_max = overhead_bps;
  }
  std::cout << t.str();
  bench::verdict("PM BW overhead at top level, B/s (paper: ~400 B/s)",
                 overhead_at_max, 400.0, 150.0);
  std::cout << '\n';
}

void fig2e(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 2(e): CPU utilizations for BW-intensive workload (1 VM)");
  t.set_header({"input(Kb/s)", "VM", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {1, 160, 320, 640, 1280};
  const auto cells = measure_sweep(WorkloadKind::kBw, inputs, 500, 1, false,
                                   opts);
  double dom0_lo = 0, dom0_hi = 0, hyp_lo = 0, hyp_hi = 0, vm_lo = 0,
         vm_hi = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    std::vector<std::string> row = {only(in, 0)};
    if (in == 1.0) {
      row.push_back(vs(r.vm.cpu_pct, 0.5, 2));
      row.push_back(vs(r.dom0.cpu_pct, 16.0));
      row.push_back(vs(r.hyp.cpu_pct, 2.5));
      dom0_lo = r.dom0.cpu_pct;
      hyp_lo = r.hyp.cpu_pct;
      vm_lo = r.vm.cpu_pct;
    } else if (in == 1280.0) {
      row.push_back(vs(r.vm.cpu_pct, 3.0, 2));
      row.push_back(vs(r.dom0.cpu_pct, 30.2));
      row.push_back(vs(r.hyp.cpu_pct, 3.5));
      dom0_hi = r.dom0.cpu_pct;
      hyp_hi = r.hyp.cpu_pct;
      vm_hi = r.vm.cpu_pct;
    } else {
      row.push_back(only(r.vm.cpu_pct, 2));
      row.push_back(only(r.dom0.cpu_pct));
      row.push_back(only(r.hyp.cpu_pct));
    }
    t.add_row(row);
  }
  std::cout << t.str();
  bench::verdict("Dom0 CPU slope per Kb/s (paper: constant rate ~0.01)",
                 (dom0_hi - dom0_lo) / 1279.0, 0.0105, 0.002);
  bench::verdict("Hypervisor CPU slope per Kb/s (paper Figs 3e/4e: 0.0005)",
                 (hyp_hi - hyp_lo) / 1279.0, 0.00055, 0.0003);
  bench::verdict("VM CPU rise over sweep (paper: 0.5 -> 3)", vm_hi - vm_lo,
                 2.5, 0.5);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 2: resource utilizations for "
               "one VM ===\n"
               "Protocol: 1 s samples averaged over 2 simulated minutes "
               "(Sec. III-C).\n\n";
  fig2a(opts);
  fig2b(opts);
  fig2c(opts);
  fig2d(opts);
  fig2e(opts);
  return 0;
}
