#pragma once
/// \file common.hpp
/// Shared helpers for the figure/table reproduction benches: run one
/// micro-benchmark cell on a fresh simulated testbed under the paper's
/// measurement protocol (1 s samples, 2 minutes, averaged) and return
/// the entity means; plus small formatting utilities for
/// paper-vs-measured tables.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/runner/runner.hpp"
#include "voprof/util/table.hpp"
#include "voprof/util/units.hpp"
#include "voprof/workloads/levels.hpp"
#include "voprof/xensim/cluster.hpp"

namespace voprof::bench {

/// Mean utilizations of one measured cell.
struct CellResult {
  mon::UtilSample vm;      ///< first VM (all VMs are symmetric)
  mon::UtilSample vm_sum;  ///< sum over VMs
  mon::UtilSample dom0;
  mon::UtilSample hyp;
  mon::UtilSample pm;
};

/// Run `n_vms` co-located VMs each with workload (kind, value) for
/// `duration` under the monitoring script and return the averages.
/// When `intra_pm` is true (BW workloads only), VM1 pings VM2 on the
/// same PM (the Fig. 5 experiment); otherwise BW targets are external.
inline CellResult measure_cell(wl::WorkloadKind kind, double value,
                               int n_vms, bool intra_pm = false,
                               std::uint64_t seed = 42,
                               util::SimMicros duration =
                                   util::seconds(120.0)) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, seed);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});

  std::vector<std::string> names;
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i + 1);
    names.push_back(spec.name);
    pm.add_vm(spec);
  }
  for (int i = 0; i < n_vms; ++i) {
    sim::DomU* vm = pm.find_vm(names[static_cast<std::size_t>(i)]);
    sim::NetTarget target;  // external by default
    if (intra_pm) {
      if (i > 0) continue;  // Fig. 5: only VM1 transmits
      target = sim::NetTarget{pm.id(), "vm2"};
    }
    vm->attach(wl::make_workload_value(kind, value, target,
                                       seed + 7 + static_cast<std::uint64_t>(i)));
  }

  mon::MonitorScript monitor(engine, pm);
  const mon::MeasurementReport& report = monitor.measure(duration);

  CellResult r;
  r.vm = report.mean(names.front());
  for (const auto& n : names) r.vm_sum += report.mean(n);
  r.dom0 = report.mean(mon::MeasurementReport::kDom0Key);
  r.hyp = report.mean(mon::MeasurementReport::kHypKey);
  r.pm = report.mean(mon::MeasurementReport::kPmKey);
  return r;
}

/// One cell of a figure sweep, for batch execution.
struct CellSpec {
  wl::WorkloadKind kind = wl::WorkloadKind::kCpu;
  double value = 0.0;
  int n_vms = 1;
  bool intra_pm = false;
  std::uint64_t seed = 42;
  util::SimMicros duration = util::seconds(120.0);
};

/// Measure every cell, fanned over opts.jobs workers. Each cell runs
/// on a fresh testbed seeded from its CellSpec alone and results come
/// back ordered by cell index, so the printed tables are byte-identical
/// for any --jobs value. Every sweep is also timed and recorded in the
/// process-wide harness session, so each bench binary leaves a
/// BENCH_<name>.json perf record behind (see harness.hpp).
inline std::vector<CellResult> measure_cells(const std::vector<CellSpec>& cells,
                                             const runner::RunOptions& opts) {
  harness::Session& session = harness::Session::global();
  const auto t0 = std::chrono::steady_clock::now();
  runner::SweepRunner sweep(opts);
  auto results = sweep.map(cells.size(), [&cells](std::size_t i) {
    const CellSpec& c = cells[i];
    return measure_cell(c.kind, c.value, c.n_vms, c.intra_pm, c.seed,
                        c.duration);
  });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double sim_s = 0.0;
  for (const CellSpec& c : cells) sim_s += util::to_seconds(c.duration);
  double checksum = 0.0;
  for (const CellResult& r : results) {
    checksum += r.vm.cpu_pct + r.vm_sum.cpu_pct + r.dom0.cpu_pct +
                r.hyp.cpu_pct + r.pm.cpu_pct + r.pm.io_blocks_per_s +
                r.pm.bw_kbps;
  }
  session.record_section(session.next_section_name("cells"), wall_s, sim_s,
                         checksum);
  return results;
}

/// The common figure pattern: one workload kind swept over its input
/// axis, cell i seeded `uint64(inputs[i]) + seed_offset` — the same
/// per-cell seeds the serial benches always used, so every printed
/// value stays anchored to the paper comparisons.
inline std::vector<CellResult> measure_sweep(wl::WorkloadKind kind,
                                             const std::vector<double>& inputs,
                                             std::uint64_t seed_offset,
                                             int n_vms, bool intra_pm,
                                             const runner::RunOptions& opts) {
  std::vector<CellSpec> cells;
  for (double in : inputs) {
    CellSpec c;
    c.kind = kind;
    c.value = in;
    c.n_vms = n_vms;
    c.intra_pm = intra_pm;
    c.seed = static_cast<std::uint64_t>(in) + seed_offset;
    cells.push_back(c);
  }
  return measure_cells(cells, opts);
}

/// "measured (paper)" cell, or just the measured value when no anchor
/// is printed in the paper for this point.
inline std::string vs(double measured, double paper, int decimals = 1) {
  return util::fmt_vs(measured, paper, decimals);
}
inline std::string only(double measured, int decimals = 1) {
  return util::fmt(measured, decimals);
}

/// Print a one-line shape verdict, e.g. "slope 0.0104 (paper ~0.0105)".
inline void verdict(const std::string& what, double measured, double paper,
                    double tolerance) {
  const bool ok = std::abs(measured - paper) <= tolerance;
  std::printf("  %-58s %8.4f  (paper ~%.4f)  %s\n", what.c_str(), measured,
              paper, ok ? "OK" : "DIVERGES");
}

}  // namespace voprof::bench
