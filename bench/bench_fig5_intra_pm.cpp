/// \file bench_fig5_intra_pm.cpp
/// Reproduces Figure 5: resource utilizations when one VM pings a
/// co-located VM inside the same PM (Sec. IV-B). The packets are
/// redirected at the software bridge, so the PM's physical NIC sees
/// nothing, while Dom0 still pays packet-processing CPU at a rate ~5x
/// lower than for inter-PM traffic.

#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using bench::measure_cell;
using bench::only;
using bench::vs;
using wl::WorkloadKind;

void fig5a() {
  util::AsciiTable t(
      "Figure 5(a): BW utilizations for intra-PM BW workload (VM1 -> VM2)");
  t.set_header({"input(Kb/s)", "VM1", "Dom0", "PM"});
  for (double in : {1.0, 320.0, 640.0, 960.0, 1280.0}) {
    const auto r = measure_cell(WorkloadKind::kBw, in, 2, /*intra_pm=*/true,
                                static_cast<std::uint64_t>(in) + 3100);
    t.add_row({only(in, 0), vs(r.vm.bw_kbps, in, 0),
               vs(r.dom0.bw_kbps, 0.0, 0), vs(r.pm.bw_kbps, 0.0, 0)});
  }
  std::cout << t.str();
  std::cout << "  paper: Dom0 and PM bandwidth are both zero - intra-PM "
               "packets never occupy the NIC\n\n";
}

void fig5b() {
  util::AsciiTable t(
      "Figure 5(b): CPU utilizations for intra-PM BW workload");
  t.set_header({"input(Kb/s)", "VM1", "Dom0", "Hypervisor"});
  double dom0_lo = 0, dom0_hi = 0;
  for (double in : {1.0, 320.0, 640.0, 960.0, 1280.0}) {
    const auto r = measure_cell(WorkloadKind::kBw, in, 2, /*intra_pm=*/true,
                                static_cast<std::uint64_t>(in) + 3200);
    t.add_row({only(in, 0), only(r.vm.cpu_pct, 2), only(r.dom0.cpu_pct),
               only(r.hyp.cpu_pct)});
    if (in == 1.0) dom0_lo = r.dom0.cpu_pct;
    if (in == 1280.0) dom0_hi = r.dom0.cpu_pct;
  }
  std::cout << t.str();
  const double intra_slope = (dom0_hi - dom0_lo) / 1279.0;
  bench::verdict("Dom0 CPU slope per Kb/s (paper: 0.002, '5X less')",
                 intra_slope, 0.0021, 0.0008);

  // Cross-check the 5x claim against the inter-PM slope measured the
  // same way.
  const auto inter_lo = measure_cell(WorkloadKind::kBw, 1.0, 2, false, 3301);
  const auto inter_hi =
      measure_cell(WorkloadKind::kBw, 1280.0, 2, false, 3302);
  // Inter-PM with 2 VMs doubles the aggregate; normalize to one sender
  // by halving.
  const double inter_slope =
      (inter_hi.dom0.cpu_pct - inter_lo.dom0.cpu_pct) / 1279.0 / 2.0;
  bench::verdict("inter-PM / intra-PM Dom0 slope ratio (paper: 5X)",
                 inter_slope / intra_slope, 5.0, 1.2);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Reproduction of Figure 5: intra-PM bandwidth-intensive "
               "workload ===\n\n";
  fig5a();
  fig5b();
  return 0;
}
