/// \file bench_fig5_intra_pm.cpp
/// Reproduces Figure 5: resource utilizations when one VM pings a
/// co-located VM inside the same PM (Sec. IV-B). The packets are
/// redirected at the software bridge, so the PM's physical NIC sees
/// nothing, while Dom0 still pays packet-processing CPU at a rate ~5x
/// lower than for inter-PM traffic.
///
/// Cells fan across workers (`--jobs N`); historical per-cell seeds
/// keep the output byte-identical to the serial run.

#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using bench::measure_cells;
using bench::measure_sweep;
using bench::only;
using bench::vs;
using wl::WorkloadKind;

void fig5a(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 5(a): BW utilizations for intra-PM BW workload (VM1 -> VM2)");
  t.set_header({"input(Kb/s)", "VM1", "Dom0", "PM"});
  const std::vector<double> inputs = {1, 320, 640, 960, 1280};
  const auto cells = measure_sweep(WorkloadKind::kBw, inputs, 3100, 2,
                                   /*intra_pm=*/true, opts);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& r = cells[i];
    t.add_row({only(inputs[i], 0), vs(r.vm.bw_kbps, inputs[i], 0),
               vs(r.dom0.bw_kbps, 0.0, 0), vs(r.pm.bw_kbps, 0.0, 0)});
  }
  std::cout << t.str();
  std::cout << "  paper: Dom0 and PM bandwidth are both zero - intra-PM "
               "packets never occupy the NIC\n\n";
}

void fig5b(const runner::RunOptions& opts) {
  util::AsciiTable t(
      "Figure 5(b): CPU utilizations for intra-PM BW workload");
  t.set_header({"input(Kb/s)", "VM1", "Dom0", "Hypervisor"});
  const std::vector<double> inputs = {1, 320, 640, 960, 1280};
  const auto cells = measure_sweep(WorkloadKind::kBw, inputs, 3200, 2,
                                   /*intra_pm=*/true, opts);
  double dom0_lo = 0, dom0_hi = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double in = inputs[i];
    const auto& r = cells[i];
    t.add_row({only(in, 0), only(r.vm.cpu_pct, 2), only(r.dom0.cpu_pct),
               only(r.hyp.cpu_pct)});
    if (in == 1.0) dom0_lo = r.dom0.cpu_pct;
    if (in == 1280.0) dom0_hi = r.dom0.cpu_pct;
  }
  std::cout << t.str();
  const double intra_slope = (dom0_hi - dom0_lo) / 1279.0;
  bench::verdict("Dom0 CPU slope per Kb/s (paper: 0.002, '5X less')",
                 intra_slope, 0.0021, 0.0008);

  // Cross-check the 5x claim against the inter-PM slope measured the
  // same way (two extra cells, same historical seeds).
  std::vector<bench::CellSpec> inter(2);
  inter[0].kind = WorkloadKind::kBw;
  inter[0].value = 1.0;
  inter[0].n_vms = 2;
  inter[0].seed = 3301;
  inter[1].kind = WorkloadKind::kBw;
  inter[1].value = 1280.0;
  inter[1].n_vms = 2;
  inter[1].seed = 3302;
  const auto inter_cells = measure_cells(inter, opts);
  // Inter-PM with 2 VMs doubles the aggregate; normalize to one sender
  // by halving.
  const double inter_slope =
      (inter_cells[1].dom0.cpu_pct - inter_cells[0].dom0.cpu_pct) / 1279.0 /
      2.0;
  bench::verdict("inter-PM / intra-PM Dom0 slope ratio (paper: 5X)",
                 inter_slope / intra_slope, 5.0, 1.2);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Figure 5: intra-PM bandwidth-intensive "
               "workload ===\n\n";
  fig5a(opts);
  fig5b(opts);
  return 0;
}
