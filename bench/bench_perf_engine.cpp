/// \file bench_perf_engine.cpp
/// Harness microbenchmarks of the simulator itself: tick throughput as
/// the testbed grows, monitoring cost, RUBiS churn and cluster
/// snapshots. Not a paper figure — this documents that the substrate
/// is fast enough to regenerate the whole evaluation in seconds, and
/// its BENCH_perf_engine.json is the perf-regression gate CI diffs
/// against bench/baselines/ (see docs/BENCHMARKING.md).
///
/// Every scenario advances a live testbed by a fixed number of
/// simulated seconds per repetition, so the JSON's
/// throughput_sim_s_per_wall_s is directly "how many times faster than
/// real time the simulator runs".

#include <memory>
#include <string>

#include "harness.hpp"
#include "voprof/monitor/script.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace {

using namespace voprof;
using bench::harness::BenchOptions;
using bench::harness::RepResult;
using bench::harness::Session;

constexpr double kSimSecondsPerRep = 10.0;

/// Digest of a machine's cumulative activity; equal across runs iff
/// the simulation was deterministic.
double machine_checksum(const sim::PhysicalMachine& pm,
                        util::SimMicros now) {
  const sim::MachineSnapshot snap = pm.snapshot(now);
  double sum = snap.dom0.counters.cpu_core_seconds +
               snap.hypervisor.cpu_core_seconds + snap.devices.disk_blocks +
               snap.devices.nic_kbits;
  for (const auto& g : snap.guests) {
    sum += g.counters.cpu_core_seconds + g.counters.io_blocks +
           g.counters.tx_kbits + g.counters.rx_kbits + g.counters.mem_mib;
  }
  return sum;
}

/// Tick throughput with n CPU-hog VMs on one PM. The testbed persists
/// across repetitions; each rep advances it by kSimSecondsPerRep.
void bench_engine_tick(Session& session, int n_vms) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 1);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(
        std::make_unique<wl::CpuHog>(50.0, static_cast<std::uint64_t>(i)));
  }
  session.bench("engine_tick/vms=" + std::to_string(n_vms),
                BenchOptions{2, 9}, [&]() {
                  engine.run_for(util::seconds(kSimSecondsPerRep));
                  return RepResult{kSimSecondsPerRep,
                                   machine_checksum(pm, engine.now())};
                });
}

/// One PM running the three workload classes at once.
void bench_mixed_workloads(Session& session) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 2);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec a;
  a.name = "cpu";
  pm.add_vm(a).attach(std::make_unique<wl::CpuHog>(60.0, 1));
  sim::VmSpec b;
  b.name = "io";
  pm.add_vm(b).attach(std::make_unique<wl::IoHog>(46.0, 2));
  sim::VmSpec c;
  c.name = "bw";
  pm.add_vm(c).attach(
      std::make_unique<wl::NetPing>(640.0, sim::NetTarget{}, 3));
  session.bench("mixed_workloads", BenchOptions{2, 9}, [&]() {
    engine.run_for(util::seconds(kSimSecondsPerRep));
    return RepResult{kSimSecondsPerRep, machine_checksum(pm, engine.now())};
  });
}

/// The paper's measurement loop itself: one monitored VM, 1 s samples.
void bench_monitored(Session& session) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 3);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec a;
  a.name = "vm1";
  pm.add_vm(a).attach(std::make_unique<wl::CpuHog>(60.0, 1));
  mon::MonitorScript mon(engine, pm);
  mon.start();
  session.bench("monitored_second", BenchOptions{2, 9}, [&]() {
    engine.run_for(util::seconds(kSimSecondsPerRep));
    return RepResult{kSimSecondsPerRep, machine_checksum(pm, engine.now())};
  });
  mon.stop();
}

/// Full application model: two-tier RUBiS with 500 closed-loop clients
/// across three machines (cluster routing + flows every tick).
void bench_rubis(Session& session) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 4);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = 500;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  session.bench("rubis_second", BenchOptions{2, 9}, [&]() {
    engine.run_for(util::seconds(kSimSecondsPerRep));
    return RepResult{kSimSecondsPerRep, inst.client->completed()};
  });
}

/// Counter-snapshot cost (the monitor takes one per sampled second).
void bench_snapshot(Session& session) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 5);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < 8; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec);
  }
  engine.run_for(util::seconds(1.0));
  constexpr int kSnapshotsPerRep = 20000;
  session.bench("snapshot_x20000", BenchOptions{1, 9}, [&]() {
    double sum = 0.0;
    for (int i = 0; i < kSnapshotsPerRep; ++i) {
      sum += pm.snapshot(engine.now()).dom0.counters.mem_mib;
    }
    return RepResult{0.0, sum};
  });
}

}  // namespace

int main() {
  Session& session = Session::global();
  for (const int n : {1, 2, 4, 8, 16}) bench_engine_tick(session, n);
  bench_mixed_workloads(session);
  bench_monitored(session);
  bench_rubis(session);
  bench_snapshot(session);
  session.write_file();
  std::printf("wrote %s (%zu benchmarks)\n", session.output_path().c_str(),
              session.measurements().size());
  return 0;
}
