/// \file bench_perf_engine.cpp
/// google-benchmark microbenchmarks of the simulator itself: tick
/// throughput as the testbed grows, monitoring cost, and cluster
/// routing. Not a paper figure — this documents that the substrate is
/// fast enough to regenerate the whole evaluation in seconds.

#include <benchmark/benchmark.h>

#include <memory>

#include "voprof/monitor/script.hpp"
#include "voprof/rubis/deployment.hpp"
#include "voprof/workloads/hogs.hpp"
#include "voprof/xensim/cluster.hpp"

namespace {

using namespace voprof;

void BM_EngineTick_VmCount(benchmark::State& state) {
  const int n_vms = static_cast<int>(state.range(0));
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 1);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < n_vms; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec).attach(
        std::make_unique<wl::CpuHog>(50.0, static_cast<std::uint64_t>(i)));
  }
  for (auto _ : state) {
    engine.run_for(util::milliseconds(10));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(n_vms) + " VMs");
}
BENCHMARK(BM_EngineTick_VmCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SimulatedSecond_MixedWorkloads(benchmark::State& state) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 2);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec a;
  a.name = "cpu";
  pm.add_vm(a).attach(std::make_unique<wl::CpuHog>(60.0, 1));
  sim::VmSpec b;
  b.name = "io";
  pm.add_vm(b).attach(std::make_unique<wl::IoHog>(46.0, 2));
  sim::VmSpec c;
  c.name = "bw";
  pm.add_vm(c).attach(
      std::make_unique<wl::NetPing>(640.0, sim::NetTarget{}, 3));
  for (auto _ : state) {
    engine.run_for(util::seconds(1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedSecond_MixedWorkloads);

void BM_MonitoredSecond(benchmark::State& state) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 3);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  sim::VmSpec a;
  a.name = "vm1";
  pm.add_vm(a).attach(std::make_unique<wl::CpuHog>(60.0, 1));
  mon::MonitorScript mon(engine, pm);
  mon.start();
  for (auto _ : state) {
    engine.run_for(util::seconds(1.0));
  }
  mon.stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitoredSecond);

void BM_RubisSecond(benchmark::State& state) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 4);
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  cluster.add_machine(sim::MachineSpec{});
  rubis::DeployOptions opt;
  opt.clients = 500;
  const rubis::RubisInstance inst = rubis::deploy_rubis(cluster, 0, 1, 2, opt);
  for (auto _ : state) {
    engine.run_for(util::seconds(1.0));
  }
  benchmark::DoNotOptimize(inst.client->completed());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RubisSecond);

void BM_Snapshot(benchmark::State& state) {
  sim::Engine engine;
  sim::Cluster cluster(engine, sim::CostModel{}, 5);
  sim::PhysicalMachine& pm = cluster.add_machine(sim::MachineSpec{});
  for (int i = 0; i < 8; ++i) {
    sim::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    pm.add_vm(spec);
  }
  engine.run_for(util::seconds(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.snapshot(engine.now()));
  }
}
BENCHMARK(BM_Snapshot);

}  // namespace

BENCHMARK_MAIN();
