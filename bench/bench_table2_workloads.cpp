/// \file bench_table2_workloads.cpp
/// Reproduces Table II: the generated benchmarks and their five
/// intensity levels, and verifies that each generator actually drives
/// the intended resource to the intended level while leaving the other
/// resources nearly idle (the paper's requirement: "high utilization on
/// a sole resource and low overhead on other resources").
///
/// Cells fan across workers (`--jobs N`); historical per-cell seeds
/// keep the output byte-identical to the serial run.

#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using wl::WorkloadKind;

/// Measured utilization of the stressed metric, per level.
double stressed_value(const bench::CellResult& r, WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return r.vm.cpu_pct;
    case WorkloadKind::kMem:
      return r.vm.mem_mib - sim::VmSpec{}.os_base_mem_mib;  // above OS base
    case WorkloadKind::kIo:
      return r.vm.io_blocks_per_s;
    case WorkloadKind::kBw:
      return r.vm.bw_kbps;
  }
  return 0.0;
}

constexpr std::array<WorkloadKind, 4> kKinds = {
    WorkloadKind::kCpu, WorkloadKind::kMem, WorkloadKind::kIo,
    WorkloadKind::kBw};

}  // namespace

int main(int argc, char** argv) {
  const runner::RunOptions opts = runner::options_from_cli(argc, argv);
  std::cout << "=== Reproduction of Table II: generated benchmarks for "
               "the measurement study ===\n\n";

  // All 4 kinds x 5 levels as one batch (kind-major, the print order).
  std::vector<bench::CellSpec> specs;
  for (WorkloadKind kind : kKinds) {
    for (std::size_t level = 0; level < wl::kLevelCount; ++level) {
      bench::CellSpec c;
      c.kind = kind;
      c.value = wl::level_value(kind, level);
      c.seed = 4000 + level * 17 + static_cast<std::uint64_t>(kind);
      c.duration = util::seconds(30.0);
      specs.push_back(c);
    }
  }
  const auto cells = bench::measure_cells(specs, opts);

  util::AsciiTable t("Table II: workload intensity levels (measured in VM)");
  t.set_header({"Workload", "L1", "L2", "L3", "L4", "L5"});
  std::size_t cell = 0;
  for (WorkloadKind kind : kKinds) {
    std::vector<std::string> row = {wl::kind_name(kind) + " (" +
                                    wl::kind_unit(kind) + ")"};
    for (std::size_t level = 0; level < wl::kLevelCount; ++level, ++cell) {
      row.push_back(bench::vs(stressed_value(cells[cell], kind),
                              specs[cell].value, 2));
    }
    t.add_row(row);
  }
  std::cout << t.str() << '\n';

  // Isolation check: each generator must leave the non-target
  // resources close to their idle baselines.
  std::cout << "Single-resource isolation at the top level (L5):\n";
  {
    std::vector<bench::CellSpec> iso(4);
    iso[0].kind = WorkloadKind::kCpu;
    iso[0].value = 99.0;
    iso[0].seed = 4501;
    iso[1].kind = WorkloadKind::kIo;
    iso[1].value = 72.0;
    iso[1].seed = 4502;
    iso[2].kind = WorkloadKind::kBw;
    iso[2].value = 1280.0;
    iso[2].seed = 4503;
    iso[3].kind = WorkloadKind::kMem;
    iso[3].value = 50.0;
    iso[3].seed = 4504;
    for (auto& c : iso) c.duration = util::seconds(30.0);
    const auto r = bench::measure_cells(iso, opts);
    std::printf("  CPU hog : io=%.1f blk/s, bw=%.1f Kb/s (both ~0)\n",
                r[0].vm.io_blocks_per_s, r[0].vm.bw_kbps);
    std::printf("  I/O hog : cpu=%.2f%% (paper: 0.84%%), bw=%.1f Kb/s\n",
                r[1].vm.cpu_pct, r[1].vm.bw_kbps);
    std::printf("  BW hog  : cpu=%.2f%% (paper: 3%%), io=%.1f blk/s\n",
                r[2].vm.cpu_pct, r[2].vm.io_blocks_per_s);
    std::printf(
        "  MEM hog : cpu=%.2f%%, io=%.1f blk/s, bw=%.1f Kb/s (all ~0; "
        "Sec. III-C: memory runs left all other metrics constant)\n",
        r[3].vm.cpu_pct, r[3].vm.io_blocks_per_s, r[3].vm.bw_kbps);
  }
  return 0;
}
