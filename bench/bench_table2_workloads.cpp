/// \file bench_table2_workloads.cpp
/// Reproduces Table II: the generated benchmarks and their five
/// intensity levels, and verifies that each generator actually drives
/// the intended resource to the intended level while leaving the other
/// resources nearly idle (the paper's requirement: "high utilization on
/// a sole resource and low overhead on other resources").

#include <iostream>

#include "common.hpp"

namespace {

using namespace voprof;
using bench::measure_cell;
using wl::WorkloadKind;

/// Measured utilization of the stressed metric, per level.
double stressed_value(const bench::CellResult& r, WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCpu:
      return r.vm.cpu_pct;
    case WorkloadKind::kMem:
      return r.vm.mem_mib - sim::VmSpec{}.os_base_mem_mib;  // above OS base
    case WorkloadKind::kIo:
      return r.vm.io_blocks_per_s;
    case WorkloadKind::kBw:
      return r.vm.bw_kbps;
  }
  return 0.0;
}

}  // namespace

int main() {
  std::cout << "=== Reproduction of Table II: generated benchmarks for "
               "the measurement study ===\n\n";

  util::AsciiTable t("Table II: workload intensity levels (measured in VM)");
  t.set_header({"Workload", "L1", "L2", "L3", "L4", "L5"});
  for (WorkloadKind kind :
       {WorkloadKind::kCpu, WorkloadKind::kMem, WorkloadKind::kIo,
        WorkloadKind::kBw}) {
    std::vector<std::string> row = {wl::kind_name(kind) + " (" +
                                    wl::kind_unit(kind) + ")"};
    for (std::size_t level = 0; level < wl::kLevelCount; ++level) {
      const double target = wl::level_value(kind, level);
      const auto r = measure_cell(kind, target, 1, false,
                                  4000 + level * 17 +
                                      static_cast<std::uint64_t>(kind),
                                  util::seconds(30.0));
      row.push_back(bench::vs(stressed_value(r, kind), target, 2));
    }
    t.add_row(row);
  }
  std::cout << t.str() << '\n';

  // Isolation check: each generator must leave the non-target
  // resources close to their idle baselines.
  std::cout << "Single-resource isolation at the top level (L5):\n";
  {
    const auto cpu = measure_cell(WorkloadKind::kCpu, 99.0, 1, false, 4501,
                                  util::seconds(30.0));
    std::printf("  CPU hog : io=%.1f blk/s, bw=%.1f Kb/s (both ~0)\n",
                cpu.vm.io_blocks_per_s, cpu.vm.bw_kbps);
    const auto io = measure_cell(WorkloadKind::kIo, 72.0, 1, false, 4502,
                                 util::seconds(30.0));
    std::printf("  I/O hog : cpu=%.2f%% (paper: 0.84%%), bw=%.1f Kb/s\n",
                io.vm.cpu_pct, io.vm.bw_kbps);
    const auto bw = measure_cell(WorkloadKind::kBw, 1280.0, 1, false, 4503,
                                 util::seconds(30.0));
    std::printf("  BW hog  : cpu=%.2f%% (paper: 3%%), io=%.1f blk/s\n",
                bw.vm.cpu_pct, bw.vm.io_blocks_per_s);
    const auto mem = measure_cell(WorkloadKind::kMem, 50.0, 1, false, 4504,
                                  util::seconds(30.0));
    std::printf(
        "  MEM hog : cpu=%.2f%%, io=%.1f blk/s, bw=%.1f Kb/s (all ~0; "
        "Sec. III-C: memory runs left all other metrics constant)\n",
        mem.vm.cpu_pct, mem.vm.io_blocks_per_s, mem.vm.bw_kbps);
  }
  return 0;
}
