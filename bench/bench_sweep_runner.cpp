/// \file bench_sweep_runner.cpp
/// Demo of the deterministic parallel runner: the Table II
/// (kind x intensity level) sweep for one VM, one independent
/// simulation per cell fanned over `--jobs N` workers, emitted as CSV.
/// The output is byte-identical for every jobs value — rerun with
/// `--jobs 1` and `--jobs 8` and diff.
///
/// Flags:
///   --jobs N        workers (default: all hardware threads; 1 = serial)
///   --out FILE      write the CSV to FILE instead of stdout
///   --duration SEC  simulated seconds per cell (default 30)
///   --seed S        base seed; cell i is seeded seed_for(S, i)

#include <chrono>
#include <iostream>

#include "harness.hpp"
#include "voprof/runner/runner.hpp"
#include "voprof/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace voprof;
  const util::CliArgs args = util::CliArgs::parse(argc, argv);

  runner::RunOptions opts;
  opts.jobs = args.get_int("jobs", 0);

  runner::MicroSweepConfig config;
  config.duration = util::seconds(args.get_double("duration", 30.0));
  config.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out_path = args.get_or("out", "");

  namespace harness = voprof::bench::harness;
  const auto t0 = std::chrono::steady_clock::now();
  const util::CsvDocument csv = runner::run_micro_sweep(config, opts);
  harness::Session::global().record_section(
      "micro_sweep",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count(),
      0.0, static_cast<double>(csv.row_count()));
  if (out_path.empty()) {
    std::cout << csv.str();
  } else {
    csv.save(out_path);
    std::cout << "wrote " << csv.row_count() << " rows to " << out_path
              << '\n';
  }
  return 0;
}
