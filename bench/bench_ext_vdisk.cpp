/// \file bench_ext_vdisk.cpp
/// Extension bench — virtual-disk geometry what-if. The paper observes
/// PM I/O ~= 2x VM I/O and attributes it to striping ("a single read
/// or write by the guest VM may involve several reads or writes").
/// With the striping mechanism implemented (vdisk.hpp), we can ask the
/// question the paper could not: how does the overhead move with the
/// stripe geometry and guest request size?

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "voprof/xensim/vdisk.hpp"

int main() {
  using namespace voprof;
  std::cout << "=== Extension: virtual-disk striping geometry what-if "
               "===\n\n"
               "Mechanism: every stripe an op touches costs a "
               "whole-stripe read-modify-write,\nplus a journal write "
               "per op. XenServer default modeled as 8-block (4 KiB) "
               "ops on\n8-block stripes + 1.4 journal blocks -> "
               "amplification 2.05 (Fig. 2(b)).\n\n";

  util::AsciiTable t(
      "Expected I/O amplification by geometry (blocks of 512 B)");
  t.set_header({"op size", "stripe 4", "stripe 8", "stripe 16",
                "stripe 32"});
  for (double op : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    std::vector<std::string> row = {util::fmt(op, 0) + " blk"};
    for (double stripe : {4.0, 8.0, 16.0, 32.0}) {
      sim::VDiskGeometry g;
      g.op_blocks = op;
      g.stripe_blocks = stripe;
      row.push_back(util::fmt(
          sim::VirtualDisk(g).expected_amplification(), 2));
    }
    t.add_row(row);
  }
  std::cout << t.str() << '\n';

  // Verify the default lands on the paper's anchor and that the
  // sampled machine-level behaviour follows the closed form.
  const sim::VirtualDisk default_disk;
  bench::verdict("default geometry amplification (paper: ~2.05x)",
                 default_disk.expected_amplification(), 2.05, 0.01);

  std::cout << "\nMachine-level check: Fig. 2(b) sweep through the "
               "sampled stripe mechanism\n";
  const auto r = bench::measure_cell(wl::WorkloadKind::kIo, 72.0, 1, false,
                                     4242, util::seconds(60.0));
  bench::verdict("PM I/O at 72 blk/s (paper: 2.05*72 + 18.8)",
                 r.pm.io_blocks_per_s, 2.05 * 72.0 + 18.8, 4.0);

  std::cout
      << "\nReading: small guest writes on wide stripes are the worst "
         "case (RMW waste\napproaches stripe/op); large sequential ops "
         "amortize the stripe penalty and\napproach 1x + journal. The "
         "paper's ~2x is specific to 4 KiB-dominated guest\nI/O on "
         "XenServer's default layout - an operator can halve the "
         "overhead by\nmatching stripe size to the workload's request "
         "size.\n";
  return 0;
}
